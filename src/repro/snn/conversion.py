"""ANN-to-SNN conversion.

The paper's central deployment story is transfer learning: take a
conventionally trained ANN, convert it to a rate-coded SNN (following Cao et
al. [6] and, for residual networks, Hu et al. [5]) and map it onto Shenjing
without retraining.  This module implements that conversion:

1. **Data-based weight normalisation** — the activations of every firing
   point are profiled on calibration data; each layer's weights are rescaled
   by ``previous_scale / current_scale`` so that with a firing threshold of
   1.0 the spike rates approximate the ANN activations.
2. **Fixed-point quantisation** — the normalised weights are quantised to the
   hardware's signed weight width (5 bits) with a per-layer scale, and the
   threshold is expressed in the same integer units.
3. **Residual shortcuts** — a normalisation layer with weights
   ``diag(lambda)`` is synthesised for every residual block, exactly the
   mechanism of Section III.3.

The produced :class:`~repro.snn.spec.SnnNetwork` is the "abstract SNN" of the
paper: integer weights, integer thresholds, binary spikes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, ReLU
from ..nn.model import ResidualBlock, Sequential
from ..nn.quantize import quantize_symmetric, quantize_threshold
from .spec import ConvSpec, DenseSpec, ResidualBlockSpec, SnnNetwork, pool_spec


class ConversionError(ValueError):
    """Raised when a model cannot be converted (unsupported layer, biases...)."""


@dataclass(frozen=True)
class ConversionConfig:
    """Parameters of the ANN-to-SNN conversion."""

    weight_bits: int = 5
    timesteps: int = 20
    percentile: float = 99.9
    max_calibration_samples: int = 256

    def __post_init__(self) -> None:
        if self.weight_bits < 2:
            raise ConversionError("weight_bits must be at least 2")
        if self.timesteps <= 0:
            raise ConversionError("timesteps must be positive")
        if not 0 < self.percentile <= 100:
            raise ConversionError("percentile must be in (0, 100]")
        if self.max_calibration_samples <= 0:
            raise ConversionError("max_calibration_samples must be positive")


def _activation_scale(values: np.ndarray, percentile: float) -> float:
    """Robust scale of a firing point: a high percentile of its activations."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    positive = flat[flat > 0]
    if positive.size == 0:
        return 1.0
    scale = float(np.percentile(positive, percentile))
    return scale if scale > 0 else 1.0


def _check_no_bias(layer: Layer) -> None:
    bias = layer.params.get("bias")
    if bias is not None and np.any(bias != 0):
        raise ConversionError(
            f"layer {layer.name} has non-zero biases; train the reference ANN "
            "with bias=False (Shenjing cores have no bias inputs)"
        )


def _capture_activations(model: Sequential, x: np.ndarray) -> Dict[str, np.ndarray]:
    """Forward ``x`` through the model capturing every firing point's output."""
    activations: Dict[str, np.ndarray] = {}
    out = np.asarray(x, dtype=np.float64)
    for layer in model.layers:
        if isinstance(layer, ResidualBlock):
            block_input = out
            inner = out
            for sub in layer.body:
                inner = sub.forward(inner)
                activations[sub.name] = inner
            shortcut = (
                block_input if layer.projection is None
                else layer.projection.forward(block_input)
            )
            out = layer.activation.forward(inner + shortcut)
            activations[layer.name] = out
        else:
            out = layer.forward(out)
            activations[layer.name] = out
    return activations


class _ShapeTracker:
    """Tracks the spatial shape of the tensor flowing through the network."""

    def __init__(self, input_shape: Tuple[int, ...]):
        self.shape: Tuple[int, ...] = tuple(int(v) for v in input_shape)

    def require_image(self, layer_name: str) -> Tuple[int, int, int]:
        if len(self.shape) != 3:
            raise ConversionError(
                f"layer {layer_name} needs an image input, current shape is {self.shape}"
            )
        return self.shape  # type: ignore[return-value]

    def require_flat(self, layer_name: str, expected: int) -> None:
        size = int(np.prod(self.shape))
        if size != expected:
            raise ConversionError(
                f"layer {layer_name} expects {expected} inputs, but the current "
                f"tensor has {size} elements (shape {self.shape})"
            )


def convert_ann_to_snn(model: Sequential, calibration: np.ndarray,
                       config: ConversionConfig | None = None,
                       name: Optional[str] = None) -> SnnNetwork:
    """Convert a trained :class:`Sequential` ANN into an abstract SNN.

    Parameters
    ----------
    model:
        The trained ANN.  Only ``Dense``, ``Conv2D``, ``AvgPool2D``,
        ``Flatten``, ``ReLU`` and ``ResidualBlock`` layers are supported and
        parameterised layers must have zero biases.
    calibration:
        A batch of representative inputs (same layout as training data) used
        to profile activations for weight normalisation.
    config:
        Conversion parameters; defaults to the paper's operating point
        (5-bit weights).
    """
    config = config or ConversionConfig()
    calibration = np.asarray(calibration, dtype=np.float64)
    if calibration.ndim == len(model.input_shape):
        calibration = calibration[None, ...]
    calibration = calibration[: config.max_calibration_samples]
    if calibration.shape[1:] != tuple(model.input_shape):
        raise ConversionError(
            f"calibration data shape {calibration.shape[1:]} does not match the "
            f"model input shape {model.input_shape}"
        )

    activations = _capture_activations(model, calibration)
    input_scale = _activation_scale(calibration, config.percentile)

    layers: List = []
    tracker = _ShapeTracker(model.input_shape)
    previous_scale = input_scale

    for layer in model.layers:
        if isinstance(layer, ReLU):
            continue
        if isinstance(layer, Flatten):
            tracker.shape = (int(np.prod(tracker.shape)),)
            continue
        if isinstance(layer, Dense):
            _check_no_bias(layer)
            tracker.require_flat(layer.name, layer.in_features)
            current_scale = _activation_scale(activations[layer.name], config.percentile)
            normalised = layer.params["weight"] * (previous_scale / current_scale)
            quantised = quantize_symmetric(normalised, config.weight_bits)
            layers.append(DenseSpec(
                name=layer.name,
                weights=quantised.values,
                threshold=quantize_threshold(1.0, quantised.scale),
                scale=quantised.scale,
            ))
            tracker.shape = (layer.out_features,)
            previous_scale = current_scale
            continue
        if isinstance(layer, Conv2D):
            _check_no_bias(layer)
            input_shape = tracker.require_image(layer.name)
            current_scale = _activation_scale(activations[layer.name], config.percentile)
            normalised = layer.params["weight"] * (previous_scale / current_scale)
            quantised = quantize_symmetric(normalised, config.weight_bits)
            spec = ConvSpec(
                name=layer.name,
                weights=quantised.values,
                threshold=quantize_threshold(1.0, quantised.scale),
                input_shape=input_shape,
                stride=layer.stride,
                pad=layer.pad,
                scale=quantised.scale,
            )
            layers.append(spec)
            tracker.shape = spec.output_shape
            previous_scale = current_scale
            continue
        if isinstance(layer, AvgPool2D):
            input_shape = tracker.require_image(layer.name)
            spec = pool_spec(
                name=layer.name,
                channels=input_shape[2],
                pool=layer.pool,
                input_shape=input_shape,
            )
            layers.append(spec)
            tracker.shape = spec.output_shape
            # Pooling does not change the activation scale (mean <= max).
            continue
        if isinstance(layer, ResidualBlock):
            block_spec, out_shape, previous_scale = _convert_residual_block(
                layer, activations, tracker, previous_scale, config
            )
            layers.append(block_spec)
            tracker.shape = out_shape
            continue
        raise ConversionError(f"unsupported layer type {type(layer).__name__} ({layer.name})")

    return SnnNetwork(
        name=name or f"{model.name}-snn",
        input_shape=model.input_shape,
        layers=layers,
        timesteps=config.timesteps,
        metadata={
            "weight_bits": config.weight_bits,
            "percentile": config.percentile,
            "source_model": model.name,
        },
    )


def _convert_residual_block(block: ResidualBlock, activations: Dict[str, np.ndarray],
                            tracker: _ShapeTracker, previous_scale: float,
                            config: ConversionConfig):
    """Convert one residual block, synthesising the shortcut normalisation layer."""
    input_shape = tracker.require_image(block.name)
    block_input_scale = previous_scale
    block_output_scale = _activation_scale(activations[block.name], config.percentile)

    body_specs: List[ConvSpec] = []
    shape = input_shape
    scale = previous_scale
    last_normalised: Optional[np.ndarray] = None
    last_layer: Optional[Conv2D] = None
    last_input_shape = input_shape
    for index, sub in enumerate(block.body):
        if not isinstance(sub, Conv2D):
            raise ConversionError(
                f"residual block {block.name} contains unsupported body layer "
                f"{type(sub).__name__}"
            )
        _check_no_bias(sub)
        is_last = index == len(block.body) - 1
        target_scale = block_output_scale if is_last else _activation_scale(
            activations[sub.name], config.percentile
        )
        normalised = sub.params["weight"] * (scale / target_scale)
        if is_last:
            # Quantised later, jointly with the shortcut: on hardware the
            # shortcut's partial sums are added to this layer's partial sums
            # as raw integers through the PS NoC, so both must share a scale.
            last_normalised = normalised
            last_layer = sub
            last_input_shape = shape
            scale = target_scale
            continue
        quantised = quantize_symmetric(normalised, config.weight_bits)
        spec = ConvSpec(
            name=sub.name,
            weights=quantised.values,
            threshold=quantize_threshold(1.0, quantised.scale),
            input_shape=shape,
            stride=sub.stride,
            pad=sub.pad,
            scale=quantised.scale,
        )
        body_specs.append(spec)
        shape = spec.output_shape
        scale = target_scale

    assert last_normalised is not None and last_layer is not None
    last_spec, shortcut_spec = _quantize_block_output(
        block, last_layer, last_normalised, last_input_shape, input_shape,
        block_input_scale, block_output_scale, config,
    )
    body_specs.append(last_spec)
    block_spec = ResidualBlockSpec(name=block.name, body=body_specs, shortcut=shortcut_spec)
    return block_spec, last_spec.output_shape, block_output_scale


def _quantize_block_output(block: ResidualBlock, last_layer: Conv2D,
                           last_normalised: np.ndarray,
                           last_input_shape: Tuple[int, int, int],
                           block_input_shape: Tuple[int, int, int],
                           input_scale: float, output_scale: float,
                           config: ConversionConfig) -> Tuple[ConvSpec, ConvSpec]:
    """Quantise the block's output layer and its shortcut with a shared scale.

    The shortcut normalisation layer of Section III.3 has weights
    ``diag(lambda)`` with ``lambda = input_scale / output_scale`` (identity
    shortcut) or the projection's weights rescaled by the same factor.  The
    shared quantisation scale is chosen so the larger of (largest normalised
    output-layer weight, largest shortcut weight) maps to the largest
    representable integer weight.
    """
    if block.projection is not None:
        if not isinstance(block.projection, Conv2D):
            raise ConversionError(
                f"residual block {block.name} has an unsupported projection layer "
                f"{type(block.projection).__name__}"
            )
        _check_no_bias(block.projection)
        shortcut_normalised = block.projection.params["weight"] * (input_scale / output_scale)
        shortcut_stride = block.projection.stride
        shortcut_pad = block.projection.pad
    else:
        channels_in = block_input_shape[2]
        lam = input_scale / output_scale
        shortcut_normalised = np.zeros((1, 1, channels_in, channels_in), dtype=np.float64)
        for channel in range(channels_in):
            shortcut_normalised[0, 0, channel, channel] = lam
        shortcut_stride = 1
        shortcut_pad = 0

    qmax = (1 << (config.weight_bits - 1)) - 1
    magnitude = max(
        float(np.abs(last_normalised).max(initial=0.0)),
        float(np.abs(shortcut_normalised).max(initial=0.0)),
    )
    shared_scale = magnitude / qmax if magnitude > 0 else 1.0
    last_q = quantize_symmetric(last_normalised, config.weight_bits, scale=shared_scale)
    shortcut_q = quantize_symmetric(shortcut_normalised, config.weight_bits, scale=shared_scale)

    last_spec = ConvSpec(
        name=last_layer.name,
        weights=last_q.values,
        threshold=quantize_threshold(1.0, shared_scale),
        input_shape=last_input_shape,
        stride=last_layer.stride,
        pad=last_layer.pad,
        scale=shared_scale,
    )
    shortcut_spec = ConvSpec(
        name=f"{block.name}.shortcut",
        weights=shortcut_q.values,
        threshold=1,
        input_shape=block_input_shape,
        stride=shortcut_stride,
        pad=shortcut_pad,
        scale=shared_scale,
    )
    if shortcut_spec.output_shape != last_spec.output_shape:
        raise ConversionError(
            f"residual block {block.name}: shortcut output {shortcut_spec.output_shape} "
            f"does not match block output {last_spec.output_shape}"
        )
    return last_spec, shortcut_spec
