"""ANN-to-SNN conversion.

The paper's central deployment story is transfer learning: take a
conventionally trained ANN, convert it to a rate-coded SNN (following Cao et
al. [6] and, for residual networks, Hu et al. [5]) and map it onto Shenjing
without retraining.  This module implements that conversion:

1. **Data-based weight normalisation** — the activations of every firing
   point are profiled on calibration data; each layer's weights are rescaled
   by ``previous_scale / current_scale`` so that with a firing threshold of
   1.0 the spike rates approximate the ANN activations.
2. **Fixed-point quantisation** — the normalised weights are quantised to the
   hardware's signed weight width (5 bits) with a per-layer scale, and the
   threshold is expressed in the same integer units.
3. **Partial-sum joins** — every addition merge (residual shortcuts, and any
   multi-branch skip topology built with :class:`~repro.nn.model.Branches`)
   synthesises its contributions with one *shared* quantisation scale: on
   hardware the contributions' partial sums are added as raw integers
   through the PS NoC, exactly the mechanism of Section III.3.  Identity
   branches become normalisation layers with weights ``diag(lambda)``.

Two outputs are supported:

* :func:`convert_ann_to_graph` — the general converter.  It emits a
  :class:`~repro.ir.graph.LayerGraph`: plain layers become fire nodes,
  addition merges become add-join nodes, concatenation merges become
  wiring-only concat nodes.  Weight normalisation tracks a *per-channel*
  scale vector, so branches profiled to different activation scales feed
  downstream layers correctly.
* :func:`convert_ann_to_snn` — the historical flat converter for purely
  sequential models (residual blocks included), producing the
  :class:`~repro.snn.spec.SnnNetwork` "abstract SNN" format that the
  Table IV flows consume.  The compiler expands either form into the same
  layer graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import AvgPool2D, Conv2D, Dense, Flatten, Layer, ReLU
from ..nn.model import Branches, ResidualBlock, Sequential
from ..nn.quantize import quantize_symmetric, quantize_threshold
from .spec import ConvSpec, DenseSpec, ResidualBlockSpec, SnnNetwork, pool_spec


class ConversionError(ValueError):
    """Raised when a model cannot be converted (unsupported layer, biases...)."""


@dataclass(frozen=True)
class ConversionConfig:
    """Parameters of the ANN-to-SNN conversion."""

    weight_bits: int = 5
    timesteps: int = 20
    percentile: float = 99.9
    max_calibration_samples: int = 256

    def __post_init__(self) -> None:
        if self.weight_bits < 2:
            raise ConversionError("weight_bits must be at least 2")
        if self.timesteps <= 0:
            raise ConversionError("timesteps must be positive")
        if not 0 < self.percentile <= 100:
            raise ConversionError("percentile must be in (0, 100]")
        if self.max_calibration_samples <= 0:
            raise ConversionError("max_calibration_samples must be positive")


def _activation_scale(values: np.ndarray, percentile: float) -> float:
    """Robust scale of a firing point: a high percentile of its activations."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    positive = flat[flat > 0]
    if positive.size == 0:
        return 1.0
    scale = float(np.percentile(positive, percentile))
    return scale if scale > 0 else 1.0


def _check_no_bias(layer: Layer) -> None:
    bias = layer.params.get("bias")
    if bias is not None and np.any(bias != 0):
        raise ConversionError(
            f"layer {layer.name} has non-zero biases; train the reference ANN "
            "with bias=False (Shenjing cores have no bias inputs)"
        )


def _prepare_calibration(model: Sequential, calibration: np.ndarray,
                         config: ConversionConfig) -> np.ndarray:
    calibration = np.asarray(calibration, dtype=np.float64)
    if calibration.ndim == len(model.input_shape):
        calibration = calibration[None, ...]
    calibration = calibration[: config.max_calibration_samples]
    if calibration.shape[1:] != tuple(model.input_shape):
        raise ConversionError(
            f"calibration data shape {calibration.shape[1:]} does not match the "
            f"model input shape {model.input_shape}"
        )
    return calibration


def _capture(layer: Layer, x: np.ndarray,
             activations: Dict[str, np.ndarray]) -> np.ndarray:
    """Forward one layer, recording every firing point's activations.

    Composite layers recurse so every *inner* firing point is profiled; the
    merge step itself is delegated back to the layer (``merge`` /
    ``merge_outputs``) so its semantics live in exactly one place.
    """
    if isinstance(layer, ResidualBlock):
        inner = x
        for sub in layer.body:
            inner = _capture(sub, inner, activations)
        out = layer.merge(inner, x)
        activations[layer.name] = out
        return out
    if isinstance(layer, Branches):
        outputs = []
        for branch in layer.branches:
            current = x
            for sub in branch:
                current = _capture(sub, current, activations)
            outputs.append(current)
        out = layer.merge_outputs(outputs)
        activations[layer.name] = out
        return out
    out = layer.forward(x)
    activations[layer.name] = out
    return out


def _capture_activations(model: Sequential, x: np.ndarray) -> Dict[str, np.ndarray]:
    """Forward ``x`` through the model capturing every firing point's output."""
    activations: Dict[str, np.ndarray] = {}
    out = np.asarray(x, dtype=np.float64)
    for layer in model.layers:
        out = _capture(layer, out, activations)
    return activations


class _ShapeTracker:
    """Tracks the spatial shape of the tensor flowing through the network."""

    def __init__(self, input_shape: Tuple[int, ...]):
        self.shape: Tuple[int, ...] = tuple(int(v) for v in input_shape)

    def require_image(self, layer_name: str) -> Tuple[int, int, int]:
        if len(self.shape) != 3:
            raise ConversionError(
                f"layer {layer_name} needs an image input, current shape is {self.shape}"
            )
        return self.shape  # type: ignore[return-value]

    def require_flat(self, layer_name: str, expected: int) -> None:
        size = int(np.prod(self.shape))
        if size != expected:
            raise ConversionError(
                f"layer {layer_name} expects {expected} inputs, but the current "
                f"tensor has {size} elements (shape {self.shape})"
            )


# ----------------------------------------------------------------------
# The general graph-emitting converter
# ----------------------------------------------------------------------
class _GraphConverter:
    """Walks an ANN recursively, emitting layer-graph nodes.

    The conversion state flowing along every path is ``(node, shape,
    scales)``: the graph node producing the current tensor, its shape, and
    the activation scale *per channel* (image shapes) or *per element*
    (flat shapes) — branches profiled to different scales stay correct
    through concatenation because downstream weights are normalised
    slice-wise by this vector.
    """

    def __init__(self, graph, activations: Dict[str, np.ndarray],
                 config: ConversionConfig):
        self.graph = graph
        self.activations = activations
        self.config = config

    # -- helpers -------------------------------------------------------
    def scale_of(self, name: str) -> float:
        try:
            values = self.activations[name]
        except KeyError:
            raise ConversionError(
                f"no profiled activations for layer {name!r}"
            ) from None
        return _activation_scale(values, self.config.percentile)

    @staticmethod
    def _flat_scales(shape: Tuple[int, ...], scales: np.ndarray) -> np.ndarray:
        if len(shape) == 1:
            return scales
        h, w, _ = shape
        return np.tile(scales, h * w)

    def _quantize(self, normalised: np.ndarray):
        return quantize_symmetric(normalised, self.config.weight_bits)

    # -- the walk ------------------------------------------------------
    def convert_sequence(self, layers: Sequence[Layer], node: str,
                         shape: Tuple[int, ...], scales: np.ndarray):
        for layer in layers:
            node, shape, scales = self.convert_layer(layer, node, shape, scales)
        return node, shape, scales

    def convert_layer(self, layer: Layer, node: str, shape: Tuple[int, ...],
                      scales: np.ndarray):
        if isinstance(layer, ReLU):
            return node, shape, scales
        if isinstance(layer, Flatten):
            flat = self._flat_scales(shape, scales)
            return node, (int(np.prod(shape)),), flat
        if isinstance(layer, Dense):
            return self._convert_dense(layer, node, shape, scales)
        if isinstance(layer, Conv2D):
            return self._convert_conv(layer, node, shape, scales)
        if isinstance(layer, AvgPool2D):
            return self._convert_pool(layer, node, shape, scales)
        if isinstance(layer, ResidualBlock):
            branches: List[List[Layer]] = [list(layer.body)]
            branches.append([] if layer.projection is None else [layer.projection])
            return self._convert_add_merge(layer.name, branches, node, shape, scales)
        if isinstance(layer, Branches):
            if layer.merge == "add":
                return self._convert_add_merge(layer.name, layer.branches,
                                               node, shape, scales)
            return self._convert_concat(layer, node, shape, scales)
        raise ConversionError(
            f"unsupported layer type {type(layer).__name__} ({layer.name})"
        )

    def _convert_dense(self, layer: Dense, node: str, shape: Tuple[int, ...],
                       scales: np.ndarray):
        _check_no_bias(layer)
        if int(np.prod(shape)) != layer.in_features:
            raise ConversionError(
                f"layer {layer.name} expects {layer.in_features} inputs, but "
                f"the current tensor has {int(np.prod(shape))} elements "
                f"(shape {shape})"
            )
        element_scales = self._flat_scales(shape, scales)
        current = self.scale_of(layer.name)
        normalised = layer.params["weight"] * (element_scales[:, None] / current)
        quantised = self._quantize(normalised)
        spec = DenseSpec(
            name=layer.name,
            weights=quantised.values,
            threshold=quantize_threshold(1.0, quantised.scale),
            scale=quantised.scale,
        )
        out = self.graph.add_layer(spec, input=node)
        return out, (layer.out_features,), np.full(layer.out_features, current)

    def _convert_conv(self, layer: Conv2D, node: str, shape: Tuple[int, ...],
                      scales: np.ndarray):
        _check_no_bias(layer)
        if len(shape) != 3:
            raise ConversionError(
                f"layer {layer.name} needs an image input, current shape is {shape}"
            )
        current = self.scale_of(layer.name)
        normalised = layer.params["weight"] * (
            scales[None, None, :, None] / current)
        quantised = self._quantize(normalised)
        spec = ConvSpec(
            name=layer.name,
            weights=quantised.values,
            threshold=quantize_threshold(1.0, quantised.scale),
            input_shape=shape,
            stride=layer.stride,
            pad=layer.pad,
            scale=quantised.scale,
        )
        out = self.graph.add_layer(spec, input=node)
        return out, spec.output_shape, np.full(spec.out_channels, current)

    def _convert_pool(self, layer: AvgPool2D, node: str, shape: Tuple[int, ...],
                      scales: np.ndarray):
        if len(shape) != 3:
            raise ConversionError(
                f"layer {layer.name} needs an image input, current shape is {shape}"
            )
        spec = pool_spec(
            name=layer.name,
            channels=shape[2],
            pool=layer.pool,
            input_shape=shape,
        )
        out = self.graph.add_layer(spec, input=node)
        # Pooling does not change the activation scale (mean <= max).
        return out, spec.output_shape, scales

    # -- addition merges (residuals and arbitrary skips) ----------------
    def _convert_add_merge(self, name: str, branches: Sequence[Sequence[Layer]],
                           node: str, shape: Tuple[int, ...], scales: np.ndarray):
        """Convert an addition merge into one add-join node.

        Every branch's final layer (a bias-free ``Conv2D``; an empty branch
        is the identity, for which a ``diag(lambda)`` normalisation layer is
        synthesised) contributes raw partial sums to the join, so all final
        layers are quantised with a *shared* scale — the generalisation of
        Section III.3's residual treatment to any number of branches.
        """
        output_scale = self.scale_of(name)
        qmax = (1 << (self.config.weight_bits - 1)) - 1
        pending: List[Tuple[str, np.ndarray, Tuple[int, int, int], int, int, str]] = []
        identity_count = 0
        for position, branch in enumerate(branches):
            branch = list(branch)
            if not branch:
                if len(shape) != 3:
                    raise ConversionError(
                        f"join {name}: identity branches need an image input "
                        f"(current shape {shape})"
                    )
                channels = shape[2]
                lam = scales / output_scale
                weights = np.zeros((1, 1, channels, channels), dtype=np.float64)
                weights[0, 0, np.arange(channels), np.arange(channels)] = lam
                suffix = f".shortcut{identity_count}" if identity_count else ".shortcut"
                identity_count += 1
                pending.append((f"{name}{suffix}", weights, shape, 1, 0, node))
                continue
            final = branch[-1]
            if isinstance(final, ReLU):
                raise ConversionError(
                    f"join {name}: branch {position} must end with the layer "
                    "whose output is added (the merge applies the ReLU)"
                )
            if not isinstance(final, Conv2D):
                raise ConversionError(
                    f"join {name}: branch {position} must end with a Conv2D "
                    f"(got {type(final).__name__})"
                )
            _check_no_bias(final)
            branch_node, branch_shape, branch_scales = self.convert_sequence(
                branch[:-1], node, shape, scales)
            if len(branch_shape) != 3:
                raise ConversionError(
                    f"join {name}: branch {position} feeds its final Conv2D a "
                    f"non-image tensor (shape {branch_shape})"
                )
            normalised = final.params["weight"] * (
                branch_scales[None, None, :, None] / output_scale)
            pending.append((final.name, normalised, branch_shape,
                            final.stride, final.pad, branch_node))

        magnitude = max(
            float(np.abs(weights).max(initial=0.0))
            for _, weights, _, _, _, _ in pending
        )
        shared_scale = magnitude / qmax if magnitude > 0 else 1.0
        threshold = quantize_threshold(1.0, shared_scale)
        contributions = []
        for spec_name, weights, in_shape, stride, pad, source in pending:
            quantised = quantize_symmetric(weights, self.config.weight_bits,
                                           scale=shared_scale)
            spec = ConvSpec(
                name=spec_name,
                weights=quantised.values,
                threshold=threshold,
                input_shape=in_shape,
                stride=stride,
                pad=pad,
                scale=shared_scale,
            )
            contributions.append((spec, source))
        shapes = {spec.output_shape for spec, _ in contributions}
        if len(shapes) != 1:
            raise ConversionError(
                f"join {name}: contribution output shapes differ ({shapes})"
            )
        out = self.graph.add_join(name, contributions)
        out_shape = contributions[0][0].output_shape
        return out, out_shape, np.full(out_shape[2], output_scale)

    # -- concatenation merges -------------------------------------------
    def _convert_concat(self, layer: Branches, node: str,
                        shape: Tuple[int, ...], scales: np.ndarray):
        """Convert a concatenation merge into one wiring-only concat node.

        Each branch keeps its own firing layers and activation scale; the
        per-channel scale vectors concatenate, so downstream weights are
        normalised channel-group by channel-group.
        """
        ends: List[str] = []
        end_scales: List[np.ndarray] = []
        for position, branch in enumerate(layer.branches):
            if branch:
                branch_node, branch_shape, branch_scales = self.convert_sequence(
                    branch, node, shape, scales)
            else:
                branch_node, branch_shape, branch_scales = node, shape, scales
            if len(branch_shape) != 3:
                raise ConversionError(
                    f"concat {layer.name}: branch {position} produces a "
                    f"non-image tensor (shape {branch_shape})"
                )
            ends.append(branch_node)
            end_scales.append(np.asarray(branch_scales, dtype=np.float64))
        out = self.graph.add_concat(layer.name, ends)
        out_shape = self.graph.node(out).output_shape
        return out, out_shape, np.concatenate(end_scales)


def convert_ann_to_graph(model: Sequential, calibration: np.ndarray,
                         config: Optional[ConversionConfig] = None,
                         name: Optional[str] = None):
    """Convert a trained ANN into an abstract SNN layer graph.

    The general converter: supports everything :func:`convert_ann_to_snn`
    does plus arbitrary DAG topologies built with
    :class:`~repro.nn.model.Branches` (addition merges of any span,
    channel concatenations, nested freely).  Returns a
    :class:`~repro.ir.graph.LayerGraph` ready for
    :func:`repro.ir.compile` and :class:`repro.ir.GraphSnnRunner`.
    """
    from ..ir.graph import GRAPH_INPUT, LayerGraph

    config = config or ConversionConfig()
    calibration = _prepare_calibration(model, calibration, config)
    activations = _capture_activations(model, calibration)
    input_scale = _activation_scale(calibration, config.percentile)

    graph = LayerGraph(
        name or f"{model.name}-snn",
        model.input_shape,
        timesteps=config.timesteps,
        metadata={
            "weight_bits": config.weight_bits,
            "percentile": config.percentile,
            "source_model": model.name,
        },
    )
    converter = _GraphConverter(graph, activations, config)
    shape = tuple(model.input_shape)
    if len(shape) == 3:
        scales = np.full(shape[2], input_scale)
    else:
        scales = np.full(int(np.prod(shape)), input_scale)
    node, _, _ = converter.convert_sequence(model.layers, GRAPH_INPUT,
                                            shape, scales)
    graph.output = node
    graph.validate()
    return graph


# ----------------------------------------------------------------------
# The historical flat converter (sequential models, SnnNetwork output)
# ----------------------------------------------------------------------
def convert_ann_to_snn(model: Sequential, calibration: np.ndarray,
                       config: ConversionConfig | None = None,
                       name: Optional[str] = None) -> SnnNetwork:
    """Convert a trained :class:`Sequential` ANN into an abstract SNN.

    Parameters
    ----------
    model:
        The trained ANN.  Only ``Dense``, ``Conv2D``, ``AvgPool2D``,
        ``Flatten``, ``ReLU`` and ``ResidualBlock`` layers are supported and
        parameterised layers must have zero biases.  Models containing
        :class:`~repro.nn.model.Branches` are DAGs — convert those with
        :func:`convert_ann_to_graph`.
    calibration:
        A batch of representative inputs (same layout as training data) used
        to profile activations for weight normalisation.
    config:
        Conversion parameters; defaults to the paper's operating point
        (5-bit weights).
    """
    config = config or ConversionConfig()
    calibration = _prepare_calibration(model, calibration, config)

    activations = _capture_activations(model, calibration)
    input_scale = _activation_scale(calibration, config.percentile)

    layers: List = []
    tracker = _ShapeTracker(model.input_shape)
    previous_scale = input_scale

    for layer in model.layers:
        if isinstance(layer, ReLU):
            continue
        if isinstance(layer, Flatten):
            tracker.shape = (int(np.prod(tracker.shape)),)
            continue
        if isinstance(layer, Dense):
            _check_no_bias(layer)
            tracker.require_flat(layer.name, layer.in_features)
            current_scale = _activation_scale(activations[layer.name], config.percentile)
            normalised = layer.params["weight"] * (previous_scale / current_scale)
            quantised = quantize_symmetric(normalised, config.weight_bits)
            layers.append(DenseSpec(
                name=layer.name,
                weights=quantised.values,
                threshold=quantize_threshold(1.0, quantised.scale),
                scale=quantised.scale,
            ))
            tracker.shape = (layer.out_features,)
            previous_scale = current_scale
            continue
        if isinstance(layer, Conv2D):
            _check_no_bias(layer)
            input_shape = tracker.require_image(layer.name)
            current_scale = _activation_scale(activations[layer.name], config.percentile)
            normalised = layer.params["weight"] * (previous_scale / current_scale)
            quantised = quantize_symmetric(normalised, config.weight_bits)
            spec = ConvSpec(
                name=layer.name,
                weights=quantised.values,
                threshold=quantize_threshold(1.0, quantised.scale),
                input_shape=input_shape,
                stride=layer.stride,
                pad=layer.pad,
                scale=quantised.scale,
            )
            layers.append(spec)
            tracker.shape = spec.output_shape
            previous_scale = current_scale
            continue
        if isinstance(layer, AvgPool2D):
            input_shape = tracker.require_image(layer.name)
            spec = pool_spec(
                name=layer.name,
                channels=input_shape[2],
                pool=layer.pool,
                input_shape=input_shape,
            )
            layers.append(spec)
            tracker.shape = spec.output_shape
            # Pooling does not change the activation scale (mean <= max).
            continue
        if isinstance(layer, ResidualBlock):
            block_spec, out_shape, previous_scale = _convert_residual_block(
                layer, activations, tracker, previous_scale, config
            )
            layers.append(block_spec)
            tracker.shape = out_shape
            continue
        if isinstance(layer, Branches):
            raise ConversionError(
                f"layer {layer.name} is a branching topology; use "
                "convert_ann_to_graph to produce a LayerGraph"
            )
        raise ConversionError(f"unsupported layer type {type(layer).__name__} ({layer.name})")

    return SnnNetwork(
        name=name or f"{model.name}-snn",
        input_shape=model.input_shape,
        layers=layers,
        timesteps=config.timesteps,
        metadata={
            "weight_bits": config.weight_bits,
            "percentile": config.percentile,
            "source_model": model.name,
        },
    )


def _convert_residual_block(block: ResidualBlock, activations: Dict[str, np.ndarray],
                            tracker: _ShapeTracker, previous_scale: float,
                            config: ConversionConfig):
    """Convert one residual block, synthesising the shortcut normalisation layer."""
    input_shape = tracker.require_image(block.name)
    block_input_scale = previous_scale
    block_output_scale = _activation_scale(activations[block.name], config.percentile)

    body_specs: List[ConvSpec] = []
    shape = input_shape
    scale = previous_scale
    last_normalised: Optional[np.ndarray] = None
    last_layer: Optional[Conv2D] = None
    last_input_shape = input_shape
    for index, sub in enumerate(block.body):
        if not isinstance(sub, Conv2D):
            raise ConversionError(
                f"residual block {block.name} contains unsupported body layer "
                f"{type(sub).__name__}"
            )
        _check_no_bias(sub)
        is_last = index == len(block.body) - 1
        target_scale = block_output_scale if is_last else _activation_scale(
            activations[sub.name], config.percentile
        )
        normalised = sub.params["weight"] * (scale / target_scale)
        if is_last:
            # Quantised later, jointly with the shortcut: on hardware the
            # shortcut's partial sums are added to this layer's partial sums
            # as raw integers through the PS NoC, so both must share a scale.
            last_normalised = normalised
            last_layer = sub
            last_input_shape = shape
            scale = target_scale
            continue
        quantised = quantize_symmetric(normalised, config.weight_bits)
        spec = ConvSpec(
            name=sub.name,
            weights=quantised.values,
            threshold=quantize_threshold(1.0, quantised.scale),
            input_shape=shape,
            stride=sub.stride,
            pad=sub.pad,
            scale=quantised.scale,
        )
        body_specs.append(spec)
        shape = spec.output_shape
        scale = target_scale

    assert last_normalised is not None and last_layer is not None
    last_spec, shortcut_spec = _quantize_block_output(
        block, last_layer, last_normalised, last_input_shape, input_shape,
        block_input_scale, block_output_scale, config,
    )
    body_specs.append(last_spec)
    block_spec = ResidualBlockSpec(name=block.name, body=body_specs, shortcut=shortcut_spec)
    return block_spec, last_spec.output_shape, block_output_scale


def _quantize_block_output(block: ResidualBlock, last_layer: Conv2D,
                           last_normalised: np.ndarray,
                           last_input_shape: Tuple[int, int, int],
                           block_input_shape: Tuple[int, int, int],
                           input_scale: float, output_scale: float,
                           config: ConversionConfig) -> Tuple[ConvSpec, ConvSpec]:
    """Quantise the block's output layer and its shortcut with a shared scale.

    The shortcut normalisation layer of Section III.3 has weights
    ``diag(lambda)`` with ``lambda = input_scale / output_scale`` (identity
    shortcut) or the projection's weights rescaled by the same factor.  The
    shared quantisation scale is chosen so the larger of (largest normalised
    output-layer weight, largest shortcut weight) maps to the largest
    representable integer weight.
    """
    if block.projection is not None:
        if not isinstance(block.projection, Conv2D):
            raise ConversionError(
                f"residual block {block.name} has an unsupported projection layer "
                f"{type(block.projection).__name__}"
            )
        _check_no_bias(block.projection)
        shortcut_normalised = block.projection.params["weight"] * (input_scale / output_scale)
        shortcut_stride = block.projection.stride
        shortcut_pad = block.projection.pad
    else:
        channels_in = block_input_shape[2]
        lam = input_scale / output_scale
        shortcut_normalised = np.zeros((1, 1, channels_in, channels_in), dtype=np.float64)
        for channel in range(channels_in):
            shortcut_normalised[0, 0, channel, channel] = lam
        shortcut_stride = 1
        shortcut_pad = 0

    qmax = (1 << (config.weight_bits - 1)) - 1
    magnitude = max(
        float(np.abs(last_normalised).max(initial=0.0)),
        float(np.abs(shortcut_normalised).max(initial=0.0)),
    )
    shared_scale = magnitude / qmax if magnitude > 0 else 1.0
    last_q = quantize_symmetric(last_normalised, config.weight_bits, scale=shared_scale)
    shortcut_q = quantize_symmetric(shortcut_normalised, config.weight_bits, scale=shared_scale)

    last_spec = ConvSpec(
        name=last_layer.name,
        weights=last_q.values,
        threshold=quantize_threshold(1.0, shared_scale),
        input_shape=last_input_shape,
        stride=last_layer.stride,
        pad=last_layer.pad,
        scale=shared_scale,
    )
    shortcut_spec = ConvSpec(
        name=f"{block.name}.shortcut",
        weights=shortcut_q.values,
        threshold=1,
        input_shape=block_input_shape,
        stride=shortcut_stride,
        pad=shortcut_pad,
        scale=shared_scale,
    )
    if shortcut_spec.output_shape != last_spec.output_shape:
        raise ConversionError(
            f"residual block {block.name}: shortcut output {shortcut_spec.output_shape} "
            f"does not match block output {last_spec.output_shape}"
        )
    return last_spec, shortcut_spec
