"""Integrate-and-fire neuron dynamics.

Shenjing's spiking logic (Fig. 2c) integrates the weighted sum into a
membrane potential, fires when the potential reaches the threshold, and
subtracts the threshold on firing ("the potential value is subtracted from
the threshold" in the paper's wording — the standard reset-by-subtraction
used for rate-coded ANN-to-SNN conversion, which preserves the information
carried by the residual potential).

:class:`IfNeuronArray` is the vectorised version used by the abstract SNN
runner; the hardware spike router re-implements the same arithmetic on its
own state so that the two can be compared bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class NeuronError(ValueError):
    """Raised on invalid neuron configuration."""


class IfNeuronArray:
    """A vector of integrate-and-fire neurons with reset by subtraction."""

    def __init__(self, size: int, threshold: int | np.ndarray):
        if size <= 0:
            raise NeuronError("size must be positive")
        threshold_array = np.asarray(threshold, dtype=np.int64)
        if threshold_array.ndim == 0:
            threshold_array = np.full(size, int(threshold_array), dtype=np.int64)
        if threshold_array.shape != (size,):
            raise NeuronError(f"threshold shape {threshold_array.shape} != ({size},)")
        if np.any(threshold_array <= 0):
            raise NeuronError("thresholds must be positive")
        self.size = size
        self.threshold = threshold_array
        self.potential = np.zeros(size, dtype=np.int64)

    def reset(self) -> None:
        """Clear the membrane potentials (start of a new input frame)."""
        self.potential[:] = 0

    def step(self, weighted_sum: np.ndarray) -> np.ndarray:
        """Integrate one time step of input and return the emitted spikes."""
        weighted_sum = np.asarray(weighted_sum, dtype=np.int64)
        if weighted_sum.shape != (self.size,):
            raise NeuronError(
                f"weighted sum shape {weighted_sum.shape} != ({self.size},)"
            )
        self.potential += weighted_sum
        fired = self.potential >= self.threshold
        self.potential -= np.where(fired, self.threshold, 0)
        return fired

    def run(self, weighted_sums: np.ndarray) -> np.ndarray:
        """Run a whole spike train: ``(T, size)`` sums -> ``(T, size)`` spikes."""
        weighted_sums = np.asarray(weighted_sums, dtype=np.int64)
        if weighted_sums.ndim != 2 or weighted_sums.shape[1] != self.size:
            raise NeuronError("weighted_sums must have shape (T, size)")
        spikes = np.zeros_like(weighted_sums, dtype=bool)
        for step in range(weighted_sums.shape[0]):
            spikes[step] = self.step(weighted_sums[step])
        return spikes


@dataclass
class BatchedIfState:
    """Integrate-and-fire state for a batch of samples processed together.

    The abstract SNN runner evaluates whole test batches at once; potentials
    are then ``(batch, size)`` and the arithmetic is identical per row.
    """

    threshold: np.ndarray
    potential: np.ndarray

    @classmethod
    def create(cls, batch: int, size: int, threshold: int | np.ndarray) -> "BatchedIfState":
        if batch <= 0 or size <= 0:
            raise NeuronError("batch and size must be positive")
        threshold_array = np.asarray(threshold, dtype=np.int64)
        if threshold_array.ndim == 0:
            threshold_array = np.full(size, int(threshold_array), dtype=np.int64)
        if threshold_array.shape != (size,):
            raise NeuronError(f"threshold shape {threshold_array.shape} != ({size},)")
        if np.any(threshold_array <= 0):
            raise NeuronError("thresholds must be positive")
        return cls(
            threshold=threshold_array,
            potential=np.zeros((batch, size), dtype=np.int64),
        )

    def step(self, weighted_sum: np.ndarray) -> np.ndarray:
        weighted_sum = np.asarray(weighted_sum, dtype=np.int64)
        if weighted_sum.shape != self.potential.shape:
            raise NeuronError(
                f"weighted sum shape {weighted_sum.shape} != {self.potential.shape}"
            )
        self.potential += weighted_sum
        fired = self.potential >= self.threshold[None, :]
        self.potential -= np.where(fired, self.threshold[None, :], 0)
        return fired
