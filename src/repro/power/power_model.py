"""Architectural power model (Section V, "Power").

The paper estimates system power exactly as this module does:

    *"Active power is estimated by multiplying the synthesized active energy
    numbers per atomic operation (Table II) with the count of each atomic
    operation obtained from our functional simulator and dividing the sum by
    running time."*

plus 4.4 pJ/bit for inter-chip I/O on multi-chip mappings.  On top of the
active energy, every powered-on core draws a background (leakage + clock)
power; Table IV's nearly constant 0.12–0.15 mW per core across applications
whose clock frequencies differ by more than 20x shows this background term
dominates, and the note that SRAM leakage is 47 % of the CIFAR-10 CNN power
confirms it is mostly frequency-independent SRAM leakage.  The default
background power per core is calibrated so the MNIST-MLP operating point
(10 cores, 40 fps, 120 kHz) reproduces the paper's 1.26–1.35 mW; the value
and the calibration are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..core.stats import ExecutionStats
from .energy_table import DEFAULT_ENERGY_TABLE, EnergyTable
from .frequency import achievable_fps, required_frequency
from .interchip import InterchipTraffic, interchip_energy_pj


class PowerModelError(ValueError):
    """Raised on inconsistent power-model inputs."""


@dataclass(frozen=True)
class PowerModelConfig:
    """Tunable parameters of the architectural power model."""

    energy_table: EnergyTable = DEFAULT_ENERGY_TABLE
    #: Background (leakage + clock tree) power of one powered-on core, watts.
    #: Calibrated against the paper's MNIST-MLP point (see module docstring).
    background_power_per_core_w: float = 1.0e-4
    #: Inter-chip I/O energy per bit, picojoules.
    interchip_pj_per_bit: float = 4.4

    def __post_init__(self) -> None:
        if self.background_power_per_core_w < 0:
            raise PowerModelError("background power must be non-negative")
        if self.interchip_pj_per_bit < 0:
            raise PowerModelError("interchip energy must be non-negative")


@dataclass
class PowerReport:
    """Power / energy estimate for one application (one row of Table IV)."""

    name: str
    cores: int
    chips: int
    timesteps: int
    fps: float
    frequency_hz: float
    cycles_per_frame: int
    active_energy_per_frame_j: float
    interchip_energy_per_frame_j: float
    background_power_w: float
    total_power_w: float

    @property
    def power_mw(self) -> float:
        return self.total_power_w * 1e3

    @property
    def power_per_core_mw(self) -> float:
        return self.power_mw / self.cores if self.cores else 0.0

    @property
    def energy_per_frame_j(self) -> float:
        return self.total_power_w / self.fps if self.fps else 0.0

    @property
    def mj_per_frame(self) -> float:
        return self.energy_per_frame_j * 1e3

    @property
    def uj_per_frame(self) -> float:
        return self.energy_per_frame_j * 1e6

    def as_row(self) -> Dict[str, float]:
        """Table IV row for this application."""
        return {
            "#Cores": self.cores,
            "Chips": self.chips,
            "Timestep (T)": self.timesteps,
            "Frames per sec": self.fps,
            "Frequency (kHz)": self.frequency_hz / 1e3,
            "Power (mW)": round(self.power_mw, 3),
            "Power/Core (mW)": round(self.power_per_core_mw, 4),
            "mJ/frame": round(self.mj_per_frame, 4),
        }


class PowerModel:
    """Turns operation counts into power and energy figures."""

    def __init__(self, config: Optional[PowerModelConfig] = None):
        self.config = config or PowerModelConfig()

    # ------------------------------------------------------------------
    # Energy from operation counts
    # ------------------------------------------------------------------
    def active_energy_pj(self, lanes_by_key: Mapping[str, int]) -> float:
        """Active energy (pJ) of a set of operations given their lane counts."""
        total = 0.0
        for key, lanes in lanes_by_key.items():
            if lanes < 0:
                raise PowerModelError(f"negative lane count for {key}")
            total += self.config.energy_table.energy_pj(key, lanes)
        return total

    def frame_energy_from_stats(self, stats: ExecutionStats) -> float:
        """Active + inter-chip energy per frame (J) from simulator statistics."""
        if stats.frames == 0:
            raise PowerModelError("statistics contain no completed frames")
        lanes = {key: value / stats.frames for key, value in stats.lanes_by_key().items()}
        # Weight loading happens once, not per frame.
        lanes.pop("core_ld_wt", None)
        active_pj = self.active_energy_pj(lanes)
        traffic = InterchipTraffic(
            spike_bits=int(stats.interchip_spike_bits / stats.frames),
            ps_bits=int(stats.interchip_ps_bits / stats.frames),
        )
        io_pj = interchip_energy_pj(traffic, self.config.interchip_pj_per_bit)
        return (active_pj + io_pj) * 1e-12

    # ------------------------------------------------------------------
    # Full report
    # ------------------------------------------------------------------
    def report(self, name: str, cores: int, chips: int, timesteps: int,
               lanes_per_frame: Mapping[str, int], cycles_per_frame: int,
               target_fps: float,
               interchip_traffic: Optional[InterchipTraffic] = None) -> PowerReport:
        """Build a Table IV row from per-frame operation lane counts."""
        if cores <= 0:
            raise PowerModelError("cores must be positive")
        if target_fps <= 0:
            raise PowerModelError("target_fps must be positive")
        lanes = dict(lanes_per_frame)
        lanes.pop("core_ld_wt", None)
        active_j = self.active_energy_pj(lanes) * 1e-12
        traffic = interchip_traffic or InterchipTraffic()
        io_j = interchip_energy_pj(traffic, self.config.interchip_pj_per_bit) * 1e-12
        frequency = required_frequency(cycles_per_frame, target_fps)
        background_w = cores * self.config.background_power_per_core_w
        total_w = background_w + (active_j + io_j) * target_fps
        return PowerReport(
            name=name,
            cores=cores,
            chips=chips,
            timesteps=timesteps,
            fps=target_fps,
            frequency_hz=frequency,
            cycles_per_frame=cycles_per_frame,
            active_energy_per_frame_j=active_j,
            interchip_energy_per_frame_j=io_j,
            background_power_w=background_w,
            total_power_w=total_w,
        )

    def tile_power_w(self, frequency_hz: float, fps: float,
                     tile_active_energy_per_frame_j: float) -> float:
        """Per-tile power at a given operating point (used for Fig. 5)."""
        if fps <= 0 or frequency_hz <= 0:
            raise PowerModelError("frequency and fps must be positive")
        return (self.config.background_power_per_core_w
                + tile_active_energy_per_frame_j * fps)
