"""Clock frequency / throughput trade-off (Section IV, Fig. 5).

Shenjing's clock frequency is chosen per application so that one inference
frame (``timesteps`` passes through the whole compiled schedule) completes
within the frame budget of the target throughput.  Higher throughput targets
therefore require proportionally higher frequency — and power scales with
frequency — which is the trade-off of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.config import ArchitectureConfig


class FrequencyError(ValueError):
    """Raised on infeasible throughput targets."""


def required_frequency(cycles_per_frame: int, target_fps: float) -> float:
    """Clock frequency (Hz) needed to sustain ``target_fps`` frames/second."""
    if cycles_per_frame <= 0:
        raise FrequencyError("cycles_per_frame must be positive")
    if target_fps <= 0:
        raise FrequencyError("target_fps must be positive")
    return cycles_per_frame * target_fps


def achievable_fps(cycles_per_frame: int, frequency_hz: float) -> float:
    """Throughput achievable at a given clock frequency."""
    if cycles_per_frame <= 0:
        raise FrequencyError("cycles_per_frame must be positive")
    if frequency_hz <= 0:
        raise FrequencyError("frequency_hz must be positive")
    return frequency_hz / cycles_per_frame


def check_feasible(frequency_hz: float, arch: ArchitectureConfig) -> None:
    """Verify the frequency does not exceed the synthesised maximum (243 MHz)."""
    if frequency_hz > arch.max_frequency_hz:
        raise FrequencyError(
            f"required frequency {frequency_hz / 1e6:.2f} MHz exceeds the "
            f"maximum achievable {arch.max_frequency_hz / 1e6:.2f} MHz"
        )


@dataclass(frozen=True)
class ThroughputPoint:
    """One point of the Fig. 5 trade-off curve."""

    fps: float
    frequency_hz: float
    tile_power_w: float

    @property
    def frequency_khz(self) -> float:
        return self.frequency_hz / 1e3

    @property
    def tile_power_uw(self) -> float:
        return self.tile_power_w * 1e6


def throughput_sweep(cycles_per_frame: int, fps_targets: Sequence[float],
                     tile_power_fn) -> List[ThroughputPoint]:
    """Evaluate the frequency/power trade-off over a set of throughput targets.

    ``tile_power_fn(frequency_hz, fps)`` returns the per-tile power in watts;
    the power model provides it.  The paper's Fig. 5 sweeps
    ``fps in {24, 30, 35, 40, 48, 60}`` for the MNIST MLP.
    """
    points = []
    for fps in fps_targets:
        frequency = required_frequency(cycles_per_frame, fps)
        points.append(ThroughputPoint(
            fps=fps,
            frequency_hz=frequency,
            tile_power_w=tile_power_fn(frequency, fps),
        ))
    return points


#: The throughput targets of Fig. 5.
FIG5_FPS_TARGETS = (24, 30, 35, 40, 48, 60)

#: The (frequency kHz, tile power uW) pairs reported in Fig. 5, for comparison.
FIG5_PAPER_POINTS = {
    24: (73, 139),
    30: (91, 155),
    35: (106, 169),
    40: (120, 181),
    48: (145, 203),
    60: (181, 235),
}
