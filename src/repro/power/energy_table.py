"""Per-atomic-operation energies (Table II of the paper).

The paper synthesises Shenjing on a 28 nm process and reports, for every
atomic operation, the active power at 120 kHz and the active energy *per
neuron* (per lane).  These numbers are the calibration constants of the
architectural power model: system-level power is obtained by multiplying each
operation's lane count (from the functional simulator or the structural
estimator) by its per-lane energy.

Since RTL synthesis is outside the scope of a Python reproduction, the values
are taken verbatim from Table II (documented substitution in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


class EnergyTableError(ValueError):
    """Raised on malformed energy tables."""


@dataclass(frozen=True)
class OpEnergy:
    """Energy and power of one atomic operation."""

    name: str
    block: str
    active_power_mw_at_120khz: float
    energy_per_neuron_pj: float
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.active_power_mw_at_120khz < 0 or self.energy_per_neuron_pj < 0:
            raise EnergyTableError(f"negative energy/power for {self.name}")
        if self.cycles <= 0:
            raise EnergyTableError(f"non-positive cycle count for {self.name}")


@dataclass(frozen=True)
class EnergyTable:
    """Table II: active power and per-neuron energy of every atomic operation."""

    entries: Dict[str, OpEnergy] = field(default_factory=dict)

    def energy_pj(self, key: str, lanes: int) -> float:
        """Active energy (pJ) of one operation touching ``lanes`` lanes."""
        return self.entry(key).energy_per_neuron_pj * lanes

    def entry(self, key: str) -> OpEnergy:
        try:
            return self.entries[key]
        except KeyError as exc:
            raise EnergyTableError(f"unknown atomic operation {key!r}") from exc

    def keys(self):
        return self.entries.keys()

    def with_entry(self, key: str, entry: OpEnergy) -> "EnergyTable":
        updated = dict(self.entries)
        updated[key] = entry
        return replace(self, entries=updated)


#: Table II, verbatim.  Keys match ``AtomicOp.energy_key``.
DEFAULT_ENERGY_TABLE = EnergyTable(entries={
    "ps_sum": OpEnergy(
        name="SUM", block="partial sum router",
        active_power_mw_at_120khz=0.0383, energy_per_neuron_pj=1.25,
    ),
    "ps_send": OpEnergy(
        name="SEND", block="partial sum router",
        active_power_mw_at_120khz=0.0443, energy_per_neuron_pj=1.44,
    ),
    "ps_bypass": OpEnergy(
        name="BYPASS", block="partial sum router",
        active_power_mw_at_120khz=0.0455, energy_per_neuron_pj=1.48,
    ),
    "spike_fire": OpEnergy(
        name="SPIKE", block="spike router",
        active_power_mw_at_120khz=0.0689, energy_per_neuron_pj=2.24,
    ),
    "spike_send": OpEnergy(
        name="SEND", block="spike router",
        active_power_mw_at_120khz=0.0721, energy_per_neuron_pj=2.35,
    ),
    "spike_bypass": OpEnergy(
        name="BYPASS", block="spike router",
        active_power_mw_at_120khz=0.0381, energy_per_neuron_pj=1.24,
    ),
    "core_acc": OpEnergy(
        name="ACC", block="neuron core",
        active_power_mw_at_120khz=0.0412, energy_per_neuron_pj=171.67, cycles=131,
    ),
    "core_ld_wt": OpEnergy(
        name="LD_WT", block="initialization",
        active_power_mw_at_120khz=0.0568, energy_per_neuron_pj=236.67, cycles=131,
    ),
})

#: Switching activity (fraction of spiking axons) at which Table II's ACC
#: energy was characterised (Section IV: 6.25 % for MNIST MLP).
REFERENCE_SWITCHING_ACTIVITY = 0.0625

#: Inter-chip I/O energy, pJ per bit (Section V, 56 Gb/s serial link on 28 nm).
INTERCHIP_PJ_PER_BIT = 4.4
