"""Inter-chip I/O energy model.

Applications that span several chips (CIFAR-10 CNN uses 4 chips, the ResNet
8) pay for every bit that crosses a chip boundary.  The paper assumes
4.4 pJ/bit based on a state-of-the-art 56 Gb/s serial link in the same 28 nm
process (reference [8]); the functional simulator and the structural
estimator both count boundary-crossing partial-sum and spike bits, and this
module converts them to energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy_table import INTERCHIP_PJ_PER_BIT


class InterchipError(ValueError):
    """Raised on invalid inter-chip traffic figures."""


@dataclass(frozen=True)
class InterchipTraffic:
    """Bits crossing chip boundaries, per frame."""

    spike_bits: int = 0
    ps_bits: int = 0

    def __post_init__(self) -> None:
        if self.spike_bits < 0 or self.ps_bits < 0:
            raise InterchipError("bit counts must be non-negative")

    @property
    def total_bits(self) -> int:
        return self.spike_bits + self.ps_bits


def interchip_energy_pj(traffic: InterchipTraffic,
                        pj_per_bit: float = INTERCHIP_PJ_PER_BIT) -> float:
    """Energy (pJ) spent on inter-chip I/O for one frame."""
    if pj_per_bit < 0:
        raise InterchipError("pj_per_bit must be non-negative")
    return traffic.total_bits * pj_per_bit


def interchip_power_w(traffic: InterchipTraffic, fps: float,
                      pj_per_bit: float = INTERCHIP_PJ_PER_BIT) -> float:
    """Average inter-chip I/O power (W) at a given frame rate."""
    if fps <= 0:
        raise InterchipError("fps must be positive")
    return interchip_energy_pj(traffic, pj_per_bit) * 1e-12 * fps
