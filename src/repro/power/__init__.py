"""Energy table (Table II), frequency/throughput trade-off (Fig. 5) and the
architectural power model that reproduces Table IV's power columns."""

from .energy_table import (
    DEFAULT_ENERGY_TABLE,
    EnergyTable,
    EnergyTableError,
    INTERCHIP_PJ_PER_BIT,
    OpEnergy,
    REFERENCE_SWITCHING_ACTIVITY,
)
from .frequency import (
    FIG5_FPS_TARGETS,
    FIG5_PAPER_POINTS,
    FrequencyError,
    ThroughputPoint,
    achievable_fps,
    check_feasible,
    required_frequency,
    throughput_sweep,
)
from .interchip import (
    InterchipError,
    InterchipTraffic,
    interchip_energy_pj,
    interchip_power_w,
)
from .power_model import PowerModel, PowerModelConfig, PowerModelError, PowerReport

__all__ = [
    "DEFAULT_ENERGY_TABLE",
    "EnergyTable",
    "EnergyTableError",
    "FIG5_FPS_TARGETS",
    "FIG5_PAPER_POINTS",
    "FrequencyError",
    "INTERCHIP_PJ_PER_BIT",
    "InterchipError",
    "InterchipTraffic",
    "OpEnergy",
    "PowerModel",
    "PowerModelConfig",
    "PowerModelError",
    "PowerReport",
    "REFERENCE_SWITCHING_ACTIVITY",
    "ThroughputPoint",
    "achievable_fps",
    "check_feasible",
    "interchip_energy_pj",
    "interchip_power_w",
    "required_frequency",
    "throughput_sweep",
]
