"""Logical mapping intermediate representation.

The first phase of the paper's toolchain (Fig. 3) maps each layer's weights
onto a set of *logical cores* and schedules the partial-sum and spike NoCs at
the source/destination level.  This module defines that intermediate
representation:

``LogicalCore``
    A slice of a layer assigned to one (not yet placed) core: which elements
    of the source layer's output feed its axons, the weight sub-matrix, and
    which global output element each neuron lane contributes to.

``ReductionGroup``
    The set of logical cores whose partial sums must be added — through the
    partial-sum NoC — to form the complete weighted sums of a set of output
    elements, plus the *head* core where the full sum is integrated and fired.

``LogicalLayer`` / ``LogicalNetwork``
    Per-layer and whole-network containers with consistency checks.

The key hardware constraint enforced here is the paper's "each PS NoC is
dedicated exclusively to the same neuron in each core": partial sums that are
added together must sit on the *same lane index* in every core of a group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ArchitectureConfig

#: Pseudo layer name used as the ``source`` of first-layer cores.
EXTERNAL_INPUT = "__input__"


class MappingError(ValueError):
    """Raised when a layer cannot be mapped or the mapping is inconsistent."""


@dataclass
class LogicalCore:
    """One logical core: a weight slice plus its input/output wiring."""

    index: int
    layer: str
    source: str
    axon_sources: np.ndarray
    lane_outputs: np.ndarray
    weights: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.axon_sources = np.asarray(self.axon_sources, dtype=np.int64).ravel()
        self.lane_outputs = np.asarray(self.lane_outputs, dtype=np.int64).ravel()
        if self.axon_sources.size == 0:
            raise MappingError(f"core {self.index} of {self.layer} has no axons")
        if self.weights is not None:
            self.weights = np.asarray(self.weights)
            expected = (self.axon_sources.size, self.lane_outputs.size)
            if self.weights.shape != expected:
                raise MappingError(
                    f"core {self.index} of {self.layer}: weight shape "
                    f"{self.weights.shape} != {expected}"
                )

    @property
    def n_axons(self) -> int:
        return int(self.axon_sources.size)

    @property
    def used_lanes(self) -> np.ndarray:
        """Lane indices that carry a meaningful partial sum."""
        return np.flatnonzero(self.lane_outputs >= 0)

    @property
    def n_outputs(self) -> int:
        return int((self.lane_outputs >= 0).sum())

    def check_fits(self, arch: ArchitectureConfig) -> None:
        if self.n_axons > arch.core_inputs:
            raise MappingError(
                f"core {self.index} of {self.layer} needs {self.n_axons} axons, "
                f"core has {arch.core_inputs}"
            )
        if self.lane_outputs.size > arch.core_neurons:
            raise MappingError(
                f"core {self.index} of {self.layer} uses {self.lane_outputs.size} "
                f"lanes, core has {arch.core_neurons}"
            )

    def reorder_axons(self, order: np.ndarray) -> None:
        """Permute the axon list (and weight rows) by ``order``."""
        order = np.asarray(order, dtype=np.int64)
        if order.shape != (self.n_axons,) or set(order.tolist()) != set(range(self.n_axons)):
            raise MappingError("axon reorder must be a permutation of the axon indices")
        self.axon_sources = self.axon_sources[order]
        if self.weights is not None:
            self.weights = self.weights[order]


@dataclass
class ReductionGroup:
    """Cores whose partial sums are added in the PS NoC to form full sums."""

    lanes: np.ndarray
    core_indices: List[int]
    head: int

    def __post_init__(self) -> None:
        self.lanes = np.asarray(self.lanes, dtype=np.int64).ravel()
        if self.lanes.size == 0:
            raise MappingError("reduction group has no lanes")
        if self.head not in self.core_indices:
            raise MappingError("reduction group head must be one of its cores")
        if len(set(self.core_indices)) != len(self.core_indices):
            raise MappingError("reduction group contains duplicate cores")

    @property
    def members(self) -> List[int]:
        """Non-head cores, in accumulation order."""
        return [core for core in self.core_indices if core != self.head]

    @property
    def size(self) -> int:
        return len(self.core_indices)


@dataclass
class LogicalLayer:
    """The logical mapping of one firing layer."""

    name: str
    cores: List[LogicalCore]
    groups: List[ReductionGroup]
    threshold: int
    out_size: int

    def __post_init__(self) -> None:
        if not self.cores:
            raise MappingError(f"layer {self.name} mapped to zero cores")
        if self.threshold <= 0:
            raise MappingError(f"layer {self.name} has a non-positive threshold")
        if self.out_size <= 0:
            raise MappingError(f"layer {self.name} has no outputs")

    # ------------------------------------------------------------------
    def core_by_index(self, index: int) -> LogicalCore:
        for core in self.cores:
            if core.index == index:
                return core
        raise MappingError(f"layer {self.name} has no core with index {index}")

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def sources(self) -> List[str]:
        """Distinct source layers feeding this layer's cores."""
        seen: List[str] = []
        for core in self.cores:
            if core.source not in seen:
                seen.append(core.source)
        return seen

    def output_locations(self) -> Dict[int, Tuple[int, int]]:
        """Map global output index -> (head core index, lane)."""
        locations: Dict[int, Tuple[int, int]] = {}
        for group in self.groups:
            head = self.core_by_index(group.head)
            for lane in group.lanes:
                output = int(head.lane_outputs[lane])
                if output < 0:
                    raise MappingError(
                        f"layer {self.name}: head core {group.head} lane {lane} "
                        "carries no output"
                    )
                if output in locations:
                    raise MappingError(
                        f"layer {self.name}: output {output} produced twice"
                    )
                locations[output] = (group.head, int(lane))
        return locations

    def validate(self, arch: ArchitectureConfig) -> None:
        """Check all the structural invariants of the logical mapping."""
        for core in self.cores:
            core.check_fits(arch)
        indices = [core.index for core in self.cores]
        if len(set(indices)) != len(indices):
            raise MappingError(f"layer {self.name} has duplicate core indices")
        grouped = [idx for group in self.groups for idx in group.core_indices]
        if sorted(grouped) != sorted(indices):
            raise MappingError(
                f"layer {self.name}: reduction groups must partition the cores"
            )
        # Lane-consistency: all cores of a group expose the same output index
        # on every group lane (the per-neuron PS NoC constraint).
        for group in self.groups:
            head = self.core_by_index(group.head)
            reference = head.lane_outputs[group.lanes]
            if np.any(reference < 0):
                raise MappingError(
                    f"layer {self.name}: group head {group.head} has unused lanes "
                    "inside the group lane set"
                )
            for index in group.core_indices:
                core = self.core_by_index(index)
                outputs = core.lane_outputs[group.lanes]
                if not np.array_equal(outputs, reference):
                    raise MappingError(
                        f"layer {self.name}: core {index} lane outputs differ from "
                        f"head {group.head} on the group lanes"
                    )
        locations = self.output_locations()
        covered = set(locations)
        if covered != set(range(self.out_size)):
            missing = sorted(set(range(self.out_size)) - covered)[:5]
            raise MappingError(
                f"layer {self.name}: outputs not fully covered "
                f"(first missing: {missing})"
            )


@dataclass
class VirtualSource:
    """A wiring-only source: a view over other layers' outputs (no cores).

    Concatenation joins of the layer-graph IR compile to virtual sources:
    element ``indices[i]`` of the virtual vector is element ``i`` of the
    producing layer, so consumer cores can name the virtual source and the
    spike-NoC mapping resolves each axon to the real producing head core.
    ``parts`` may reference real layers or other virtual sources declared
    earlier (nested concatenation).
    """

    name: str
    size: int
    #: (producer name, indices into the virtual vector, one per producer output)
    parts: List[Tuple[str, np.ndarray]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise MappingError(f"virtual source {self.name} has no elements")
        if not self.parts:
            raise MappingError(f"virtual source {self.name} has no parts")
        self.parts = [
            (producer, np.asarray(indices, dtype=np.int64).ravel())
            for producer, indices in self.parts
        ]
        covered = np.concatenate([indices for _, indices in self.parts])
        if sorted(covered.tolist()) != list(range(self.size)):
            raise MappingError(
                f"virtual source {self.name}: parts do not partition its "
                f"{self.size} elements"
            )

    def producers(self) -> List[str]:
        return [producer for producer, _ in self.parts]

    def locator(self, locators: Dict[str, Dict[int, Tuple[int, int]]]) -> Dict[int, Tuple[int, int]]:
        """Merged output locator, given the producers' locators."""
        merged: Dict[int, Tuple[int, int]] = {}
        for producer, indices in self.parts:
            base = locators[producer]
            for element, out_index in enumerate(indices):
                merged[int(out_index)] = base[element]
        return merged


@dataclass
class LogicalNetwork:
    """Whole-network logical mapping: layers in topological order."""

    name: str
    input_size: int
    layers: List[LogicalLayer] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    #: wiring-only sources (concatenation views), by name
    virtual_sources: Dict[str, VirtualSource] = field(default_factory=dict)

    @property
    def n_cores(self) -> int:
        return sum(layer.n_cores for layer in self.layers)

    @property
    def output_size(self) -> int:
        if not self.layers:
            return self.input_size
        return self.layers[-1].out_size

    def layer_by_name(self, name: str) -> LogicalLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise MappingError(f"no logical layer named {name!r}")

    def validate(self, arch: ArchitectureConfig) -> None:
        names = [layer.name for layer in self.layers] + list(self.virtual_sources)
        if len(set(names)) != len(names):
            raise MappingError("duplicate logical layer / virtual source names")
        known = {EXTERNAL_INPUT}
        sizes = {EXTERNAL_INPUT: self.input_size}

        def activate_virtuals() -> None:
            # a virtual source becomes usable once all its producers exist
            changed = True
            while changed:
                changed = False
                for virtual in self.virtual_sources.values():
                    if virtual.name in known:
                        continue
                    if all(producer in known for producer in virtual.producers()):
                        for producer, indices in virtual.parts:
                            if indices.size != sizes[producer]:
                                raise MappingError(
                                    f"virtual source {virtual.name}: part "
                                    f"{producer!r} has {indices.size} elements "
                                    f"but the producer has {sizes[producer]}"
                                )
                        known.add(virtual.name)
                        sizes[virtual.name] = virtual.size
                        changed = True

        activate_virtuals()
        for layer in self.layers:
            layer.validate(arch)
            for core in layer.cores:
                if core.source not in known:
                    raise MappingError(
                        f"layer {layer.name}: core {core.index} reads from "
                        f"{core.source!r} which is not produced earlier"
                    )
                limit = sizes[core.source]
                if core.axon_sources.size and int(core.axon_sources.max()) >= limit:
                    raise MappingError(
                        f"layer {layer.name}: core {core.index} reads element "
                        f"{int(core.axon_sources.max())} of {core.source!r} "
                        f"which only has {limit} outputs"
                    )
            known.add(layer.name)
            sizes[layer.name] = layer.out_size
            activate_virtuals()

    def build_locators(self) -> Dict[str, Dict[int, Tuple[int, int]]]:
        """Output locators of every layer *and* virtual source.

        Maps each source name to ``{global output index -> (head core, lane)}``;
        virtual sources resolve through their producers, so consumers of a
        concatenation join look up producing head cores transparently.
        """
        locators: Dict[str, Dict[int, Tuple[int, int]]] = {
            layer.name: layer.output_locations() for layer in self.layers
        }
        pending = dict(self.virtual_sources)
        while pending:
            progressed = False
            for name in list(pending):
                virtual = pending[name]
                if all(producer in locators for producer in virtual.producers()):
                    locators[name] = virtual.locator(locators)
                    del pending[name]
                    progressed = True
            if not progressed:
                raise MappingError(
                    "virtual sources reference unknown or cyclic producers: "
                    f"{sorted(pending)}"
                )
        return locators

    def core_count_by_layer(self) -> Dict[str, int]:
        return {layer.name: layer.n_cores for layer in self.layers}
