"""Logical mapping of convolutional (and pooling) layers (Section III.2).

A convolution layer of kernel ``k x k x cin x cout`` over an ``h x w`` input
is mapped by tiling the *output* feature map into rectangular blocks small
enough that

* the block's output pixels fit in one core's neurons, and
* the input patch needed to compute them (block footprint plus the ``k - 1``
  halo) fits in one core's synapses.

Each logical core then computes the partial sums of one output block for one
(input channel, output channel) pair; the contributions of all input channels
are added across cores through the partial-sum NoC, exactly as the paper
accumulates partial sums "among the channels ... to complete the convolution".

The overlapping halo pixels at block boundaries are *duplicated* into the
cores that need them (the toolchain routes the same spikes to several
destination cores, which is what Shenjing's spike-NoC multicast is for),
rather than exchanged as boundary partial sums as in the paper's Fig. 4.
This substitution — documented in DESIGN.md — produces the same complete
sums through the same PS-NoC mechanism while keeping the per-core lane
allocation uniform; the resulting core counts match the paper's Table IV
closely (e.g. ~680 vs 705 cores for the MNIST CNN).

Average pooling is a special case: a strided convolution with a diagonal
kernel (see :func:`repro.snn.spec.pool_spec`).  The mapper skips
(input-channel, output-channel) pairs whose kernel slice is entirely zero, so
pooling costs one core per (block, channel) rather than ``cin x cout`` cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.spec import ConvSpec
from .logical import EXTERNAL_INPUT, LogicalCore, LogicalLayer, MappingError, ReductionGroup


@dataclass(frozen=True)
class ConvGeometry:
    """Output-block tiling chosen for a convolution layer."""

    tile_h: int
    tile_w: int
    blocks_h: int
    blocks_w: int
    out_h: int
    out_w: int

    @property
    def n_blocks(self) -> int:
        return self.blocks_h * self.blocks_w


def conv_block_size(spec: ConvSpec, arch: ArchitectureConfig) -> Tuple[int, int]:
    """Largest square output block that fits one core (neurons and synapses)."""
    out_h, out_w, _ = spec.output_shape
    k, stride = spec.kernel, spec.stride
    best = 0
    limit = min(max(out_h, out_w), arch.core_neurons)
    for side in range(1, limit + 1):
        if side * side > arch.core_neurons:
            break
        patch = (side - 1) * stride + k
        if patch * patch > arch.core_inputs:
            break
        best = side
    if best == 0:
        raise MappingError(
            f"layer {spec.name}: kernel {k} (stride {stride}) does not fit a core "
            f"with {arch.core_inputs} synapses"
        )
    return min(best, out_h), min(best, out_w)


def conv_geometry(spec: ConvSpec, arch: ArchitectureConfig,
                  block: Optional[Tuple[int, int]] = None) -> ConvGeometry:
    """Tiling geometry of a convolution layer (optionally with a forced block size)."""
    out_h, out_w, _ = spec.output_shape
    tile_h, tile_w = block if block is not None else conv_block_size(spec, arch)
    if tile_h <= 0 or tile_w <= 0:
        raise MappingError("block dimensions must be positive")
    patch = (max(tile_h, tile_w) - 1) * spec.stride + spec.kernel
    if tile_h * tile_w > arch.core_neurons or patch * patch > arch.core_inputs:
        raise MappingError(
            f"layer {spec.name}: forced block {tile_h}x{tile_w} does not fit a core"
        )
    return ConvGeometry(
        tile_h=tile_h,
        tile_w=tile_w,
        blocks_h=math.ceil(out_h / tile_h),
        blocks_w=math.ceil(out_w / tile_w),
        out_h=out_h,
        out_w=out_w,
    )


def estimate_conv_cores(spec: ConvSpec, arch: ArchitectureConfig,
                        block: Optional[Tuple[int, int]] = None) -> int:
    """Number of logical cores the mapper will use for ``spec``.

    ``block`` forces the output tiling, mirroring :func:`map_conv` — add-joins
    force the smallest block any contribution supports on all of them.
    """
    geometry = conv_geometry(spec, arch, block=block)
    contributing = _contributing_pairs(spec)
    per_block = sum(max(1, len(cins)) for cins in contributing.values())
    return geometry.n_blocks * per_block


def _contributing_pairs(spec: ConvSpec) -> Dict[int, List[int]]:
    """For each output channel, the input channels with a non-zero kernel slice."""
    pairs: Dict[int, List[int]] = {}
    for co in range(spec.out_channels):
        cins = [
            ci for ci in range(spec.in_channels)
            if np.any(spec.weights[:, :, ci, co] != 0)
        ]
        pairs[co] = cins
    return pairs


def map_conv(spec: ConvSpec, arch: ArchitectureConfig, source: str = EXTERNAL_INPUT,
             start_index: int = 0, materialize: bool = True,
             block: Optional[Tuple[int, int]] = None) -> LogicalLayer:
    """Map a :class:`ConvSpec` onto logical cores.

    ``block`` forces a specific output-block size; it is used to align the
    tiling of a residual block's output layer and its shortcut layer so their
    partial sums land on matching lanes.
    """
    geometry = conv_geometry(spec, arch, block=block)
    h, w, cin = spec.input_shape
    out_h, out_w, cout = spec.output_shape
    k, stride, pad = spec.kernel, spec.stride, spec.pad
    contributing = _contributing_pairs(spec)

    cores: List[LogicalCore] = []
    groups: List[ReductionGroup] = []
    index = start_index

    for block_row in range(geometry.blocks_h):
        row_start = block_row * geometry.tile_h
        row_stop = min(row_start + geometry.tile_h, out_h)
        out_rows = np.arange(row_start, row_stop, dtype=np.int64)
        for block_col in range(geometry.blocks_w):
            col_start = block_col * geometry.tile_w
            col_stop = min(col_start + geometry.tile_w, out_w)
            out_cols = np.arange(col_start, col_stop, dtype=np.int64)
            n_lanes = out_rows.size * out_cols.size
            lanes = np.arange(n_lanes, dtype=np.int64)

            # Input patch needed by this output block (clipped to the image).
            in_row_lo = max(0, int(out_rows[0]) * stride - pad)
            in_row_hi = min(h, int(out_rows[-1]) * stride - pad + k)
            in_col_lo = max(0, int(out_cols[0]) * stride - pad)
            in_col_hi = min(w, int(out_cols[-1]) * stride - pad + k)
            patch_rows = np.arange(in_row_lo, in_row_hi, dtype=np.int64)
            patch_cols = np.arange(in_col_lo, in_col_hi, dtype=np.int64)

            for co in range(cout):
                lane_outputs = np.empty(n_lanes, dtype=np.int64)
                for lane, (orow, ocol) in enumerate(
                        (int(r), int(c)) for r in out_rows for c in out_cols):
                    lane_outputs[lane] = (orow * out_w + ocol) * cout + co
                cins = contributing[co] or [0]
                block_cores: List[int] = []
                for ci in cins:
                    axons, weights = _build_core_slice(
                        spec, patch_rows, patch_cols, out_rows, out_cols,
                        ci, co, materialize,
                    )
                    core = LogicalCore(
                        index=index,
                        layer=spec.name,
                        source=source,
                        axon_sources=axons,
                        lane_outputs=lane_outputs.copy(),
                        weights=weights,
                    )
                    core.check_fits(arch)
                    cores.append(core)
                    block_cores.append(index)
                    index += 1
                groups.append(ReductionGroup(
                    lanes=lanes.copy(),
                    core_indices=block_cores,
                    head=block_cores[0],
                ))

    return LogicalLayer(
        name=spec.name,
        cores=cores,
        groups=groups,
        threshold=spec.threshold,
        out_size=spec.out_size,
    )


def _build_core_slice(spec: ConvSpec, patch_rows: np.ndarray, patch_cols: np.ndarray,
                      out_rows: np.ndarray, out_cols: np.ndarray, ci: int, co: int,
                      materialize: bool) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Axon list and weight matrix of one (block, cin, cout) logical core."""
    h, w, cin = spec.input_shape
    k, stride, pad = spec.kernel, spec.stride, spec.pad

    # Axons: the patch pixels of input channel ci, row-major, as global
    # indices into the flattened (h, w, cin) input of this layer.
    patch_grid_r, patch_grid_c = np.meshgrid(patch_rows, patch_cols, indexing="ij")
    axons = ((patch_grid_r * w + patch_grid_c) * cin + ci).ravel()

    if not materialize:
        return axons, None

    position = {
        (int(r), int(c)): pos
        for pos, (r, c) in enumerate(
            (r, c) for r in patch_rows for c in patch_cols)
    }
    n_lanes = out_rows.size * out_cols.size
    weights = np.zeros((axons.size, n_lanes), dtype=np.int16)
    kernel = spec.weights[:, :, ci, co]
    for lane, (orow, ocol) in enumerate(
            (int(r), int(c)) for r in out_rows for c in out_cols):
        base_r = orow * stride - pad
        base_c = ocol * stride - pad
        for kr in range(k):
            in_r = base_r + kr
            if in_r < 0 or in_r >= h:
                continue
            for kc in range(k):
                in_c = base_c + kc
                if in_c < 0 or in_c >= w:
                    continue
                value = kernel[kr, kc]
                if value == 0:
                    continue
                pos = position.get((in_r, in_c))
                if pos is None:
                    continue
                weights[pos, lane] = value
    return axons, weights
