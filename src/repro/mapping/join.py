"""Logical mapping of partial-sum add-joins (generalised Section III.3).

An *add-join* integrates and fires the sum of several linear contributions:
each contribution is a layer spec applied to (possibly) a different source
layer, and the contributions' partial sums are added through the partial-sum
NoC before the single integrate-and-fire stage.  The paper's residual block
is the two-contribution case (body output + shortcut normalisation layer);
the layer-graph IR (:mod:`repro.ir`) emits the same construct for arbitrary
skip topologies, so one mapper covers them all.

The key constraint is lane alignment: "each PS NoC is dedicated exclusively
to the same neuron in each core", so every contribution must be mapped with
the *same output tiling* — for convolutions the smallest block any
contribution supports is forced on all of them; fully connected
contributions tile deterministically by output columns and align for free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.spec import ConvSpec, DenseSpec, LayerSpec
from .conv import conv_block_size, conv_geometry, estimate_conv_cores, map_conv
from .fc import fc_geometry, map_dense
from .logical import LogicalLayer, MappingError, ReductionGroup

#: one linear contribution of a join: (layer spec, source layer name)
Contribution = Tuple[LayerSpec, str]


def join_block_size(specs: Sequence[ConvSpec], arch: ArchitectureConfig) -> Tuple[int, int]:
    """Shared square output block: the smallest any contribution supports."""
    side = min(conv_block_size(spec, arch)[0] for spec in specs)
    return side, side


def _check_contributions(name: str, specs: Sequence[LayerSpec]) -> str:
    if not specs:
        raise MappingError(f"join {name} has no contributions")
    if all(isinstance(spec, ConvSpec) for spec in specs):
        shapes = {spec.output_shape for spec in specs}
        if len(shapes) != 1:
            raise MappingError(
                f"join {name}: contribution output shapes differ ({shapes})"
            )
        return "conv"
    if all(isinstance(spec, DenseSpec) for spec in specs):
        sizes = {spec.out_size for spec in specs}
        if len(sizes) != 1:
            raise MappingError(
                f"join {name}: contribution output sizes differ ({sizes})"
            )
        return "dense"
    raise MappingError(
        f"join {name}: contributions must be all-conv or all-dense"
    )


def map_add_join(name: str, contributions: Sequence[Contribution],
                 arch: ArchitectureConfig, start_index: int = 0,
                 materialize: bool = True,
                 threshold: Optional[int] = None) -> LogicalLayer:
    """Map an add-join onto one merged :class:`LogicalLayer`.

    Every contribution is mapped with the shared output tiling and the
    per-output-block reduction groups are merged: the first contribution's
    head stays the head of each merged group (so the merged layer fires with
    ``threshold``, defaulting to the first contribution's spec threshold),
    and all other contributions' cores become ordinary group members whose
    partial sums travel to that head.
    """
    specs = [spec for spec, _ in contributions]
    kind = _check_contributions(name, specs)
    forced = join_block_size(specs, arch) if kind == "conv" and len(specs) > 1 else None

    layers: List[LogicalLayer] = []
    index = start_index
    for spec, source in contributions:
        if kind == "conv":
            layer = map_conv(spec, arch, source=source, start_index=index,
                             materialize=materialize, block=forced)
        else:
            layer = map_dense(spec, arch, source=source, start_index=index,
                              materialize=materialize)
        layers.append(layer)
        index += layer.n_cores

    if len(layers) == 1:
        only = layers[0]
        if only.name != name:
            for core in only.cores:
                core.layer = name
            only = LogicalLayer(name=name, cores=only.cores, groups=only.groups,
                                threshold=threshold or only.threshold,
                                out_size=only.out_size)
        return only
    return _merge_join(name, layers, threshold=threshold)


def _merge_join(name: str, layers: Sequence[LogicalLayer],
                threshold: Optional[int] = None) -> LogicalLayer:
    """Fold several identically-tiled layers into one merged layer."""
    primary = layers[0]
    group_counts = {len(layer.groups) for layer in layers}
    if len(group_counts) != 1:
        raise MappingError(
            f"join {name}: contribution group counts differ ({group_counts}) "
            "— tilings are misaligned"
        )
    merged_groups: List[ReductionGroup] = []
    for groups in zip(*(layer.groups for layer in layers)):
        head_group = groups[0]
        head_core = primary.core_by_index(head_group.head)
        reference = head_core.lane_outputs[head_group.lanes]
        members: List[int] = list(head_group.core_indices)
        for layer, group in zip(layers[1:], groups[1:]):
            if not np.array_equal(head_group.lanes, group.lanes):
                raise MappingError(
                    f"join {name}: group lane sets differ between contributions"
                )
            other_head = layer.core_by_index(group.head)
            if not np.array_equal(other_head.lane_outputs[group.lanes], reference):
                raise MappingError(
                    f"join {name}: group outputs differ between contributions"
                )
            members.extend(group.core_indices)
        merged_groups.append(ReductionGroup(
            lanes=head_group.lanes.copy(),
            core_indices=members,
            head=head_group.head,
        ))
    all_cores = [core for layer in layers for core in layer.cores]
    for core in all_cores:
        core.layer = name
    return LogicalLayer(
        name=name,
        cores=all_cores,
        groups=merged_groups,
        threshold=threshold or primary.threshold,
        out_size=primary.out_size,
    )


def estimate_join_cores(specs: Sequence[LayerSpec],
                        arch: ArchitectureConfig) -> int:
    """Core count of an add-join, honouring the *forced* shared tiling.

    This is the quantity :func:`map_add_join` actually uses — a contribution
    whose natural block is larger than the shared one (e.g. a ``1x1``
    shortcut next to a ``5x5`` body output) needs more cores than its
    standalone estimate, which is exactly the drift the standalone per-spec
    estimators used to exhibit.
    """
    kind = _check_contributions("<estimate>", specs)
    if kind == "dense":
        return sum(fc_geometry(spec.in_size, spec.out_size, arch).n_cores
                   for spec in specs)
    forced = join_block_size(specs, arch) if len(specs) > 1 else None
    return sum(estimate_conv_cores(spec, arch, block=forced) for spec in specs)
