"""Structural resource and operation-count estimation.

For the largest benchmarks (CIFAR-10 CNN and ResNet, thousands of cores) the
paper does not run RTL simulation; it counts atomic operations with the
functional simulator and multiplies by per-op energies.  For networks too
large to cycle-simulate comfortably in Python, this module derives the same
per-time-step operation counts *structurally* from the logical mapping and the
placement — without materialising weights or executing anything — so that the
power model can produce Table IV's rows for every benchmark.

Cycle estimates come in two flavours:

* **schedule-aware** — when the caller passes the compiled
  :class:`~repro.ir.pipeline.RoutePlan` (``routes=``), per-layer cycles are
  delegated to the :mod:`repro.timing` analytic model, which prices the
  actual packed waves (multicast chains, reduction-tree rounds, optimized
  placement included) and matches the simulator's
  ``ExecutionStats.cycles`` exactly;
* **closed-form** — without a route plan (the
  ``examples/quickstart.py --list-networks`` path, where nothing has been
  routed), every NoC phase is priced with
  :func:`repro.timing.serialization_lower_bound` — the classical
  congestion/dilation bound ``max(most-loaded link, longest route) + 1`` —
  over the layer's point-to-point transfers: one unpacked wave for spike
  delivery, one wave per serial member-chain round for the partial-sum
  reduction.  A pre-compile approximation of the *default* pipeline's
  schedule, sharing one bound implementation with the timing model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.spec import SnnNetwork
from .compiler import build_logical_network
from .logical import EXTERNAL_INPUT, LogicalLayer, LogicalNetwork, MappingError
from .placement import Placement, place_network
from .routing import Transfer, route_length, xy_route
from .spike_mapping import canonicalise_axons


@dataclass
class LayerEstimate:
    """Per-time-step operation counts of one logical layer."""

    name: str
    cores: int
    groups: int
    ops: Dict[str, int] = field(default_factory=dict)
    lanes: Dict[str, int] = field(default_factory=dict)
    interchip_spike_bits: int = 0
    interchip_ps_bits: int = 0
    cycles: int = 0

    def add_op(self, key: str, lanes: int, count: int = 1) -> None:
        self.ops[key] = self.ops.get(key, 0) + count
        self.lanes[key] = self.lanes.get(key, 0) + lanes * count


@dataclass
class MappingEstimate:
    """Whole-network structural estimate (one time step, one frame)."""

    name: str
    arch: ArchitectureConfig
    layers: List[LayerEstimate]
    total_cores: int
    chips: int
    fabric: Tuple[int, int]
    timesteps: int
    #: the schedule-aware :class:`~repro.timing.TimingEstimate` when the
    #: estimate was made from a compiled route plan (None = closed-form)
    timing: Optional[object] = None

    @property
    def cycle_source(self) -> str:
        """How per-layer cycles were derived: ``"waves"`` or ``"structural"``."""
        return "waves" if self.timing is not None else "structural"

    @property
    def cycles_per_timestep(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def cycles_per_frame(self) -> int:
        return self.cycles_per_timestep * self.timesteps

    def ops_per_timestep(self) -> Dict[str, int]:
        totals: Counter = Counter()
        for layer in self.layers:
            totals.update(layer.ops)
        return dict(totals)

    def lanes_per_timestep(self) -> Dict[str, int]:
        totals: Counter = Counter()
        for layer in self.layers:
            totals.update(layer.lanes)
        return dict(totals)

    def lanes_per_frame(self) -> Dict[str, int]:
        return {key: value * self.timesteps for key, value in self.lanes_per_timestep().items()}

    def interchip_bits_per_frame(self) -> Tuple[int, int]:
        spike = sum(layer.interchip_spike_bits for layer in self.layers) * self.timesteps
        ps = sum(layer.interchip_ps_bits for layer in self.layers) * self.timesteps
        return spike, ps

    def describe(self) -> str:
        lines = [
            f"MappingEstimate '{self.name}': {self.total_cores} cores, "
            f"{self.chips} chip(s), fabric {self.fabric[0]}x{self.fabric[1]}, "
            f"{self.cycles_per_timestep} cycles/timestep",
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:<24} {layer.cores:>6} cores  {layer.cycles:>6} cycles"
            )
        return "\n".join(lines)


def estimate_mapping(snn, arch: ArchitectureConfig,
                     rows: Optional[int] = None,
                     logical: Optional[LogicalNetwork] = None,
                     placement: Optional[Placement] = None,
                     routes=None, timing=None) -> MappingEstimate:
    """Estimate per-time-step operation counts for a network on ``arch``.

    ``snn`` may be an :class:`SnnNetwork` or a
    :class:`~repro.ir.graph.LayerGraph` (DAG topologies estimate through the
    same structural walk).  A pre-built logical network / placement can be
    passed in to avoid recomputing them (the experiment pipeline reuses the
    compiled ones for networks it also simulates).

    When ``routes`` (a compiled :class:`~repro.ir.pipeline.RoutePlan`) is
    given, per-layer **cycles** are delegated to the :mod:`repro.timing`
    model, which prices the actual packed wave schedule — required for
    ``optimize_noc=True`` mappings, whose multicast chains and reduction
    trees the closed-form walk cannot see.  A ``timing`` estimate the
    ``timing-model`` pass already produced (``CompiledNetwork.timing``)
    can be passed directly to skip re-pricing the plan.  Operation counts
    stay structural either way.
    """
    if logical is None:
        logical = build_logical_network(snn, arch, materialize=False)
    if placement is None:
        placement = place_network(logical, arch, rows=rows)

    wave_cycles: Dict[str, int] = {}
    if timing is None and routes is not None:
        from ..timing import time_route_plan

        timing = time_route_plan(routes, arch, name=snn.name,
                                 timesteps=snn.timesteps)
    if timing is not None:
        wave_cycles = timing.per_layer()
        missing = [layer.name for layer in logical.layers
                   if layer.name not in wave_cycles]
        if missing:
            # a partial/custom plan would silently mix the two cycle models
            # while cycle_source claims "waves" — fail loudly instead
            raise MappingError(
                f"timing estimate does not cover logical layers {missing}; "
                "pass the route plan of the full mapping"
            )

    locators = logical.build_locators()
    estimates: List[LayerEstimate] = []
    for layer in logical.layers:
        estimate = _estimate_layer(layer, logical, placement, arch, locators)
        if layer.name in wave_cycles:
            estimate.cycles = wave_cycles[layer.name]
        estimates.append(estimate)
    return MappingEstimate(
        name=snn.name,
        arch=arch,
        layers=estimates,
        total_cores=logical.n_cores,
        chips=placement.chips_used(),
        fabric=(placement.rows, placement.cols),
        timesteps=snn.timesteps,
        timing=timing,
    )


def _estimate_layer(layer: LogicalLayer, logical: LogicalNetwork, placement: Placement,
                    arch: ArchitectureConfig,
                    locators: Dict[str, Dict[int, Tuple[int, int]]]) -> LayerEstimate:
    # circular at module scope: repro.timing prices mapping programs
    from ..timing import serialization_lower_bound

    estimate = LayerEstimate(name=layer.name, cores=layer.n_cores, groups=len(layer.groups))

    # --- spike delivery from the source layers -------------------------------
    delivery_transfers: List[Transfer] = []
    for core in layer.cores:
        if core.source == EXTERNAL_INPUT:
            continue
        segments = canonicalise_axons(core, locators[core.source])
        dst = placement.position(core.index)
        for segment in segments:
            src = placement.position(segment.producer_core)
            hops = route_length(src, dst)
            lanes = segment.width
            estimate.add_op("spike_send", lanes)
            if hops > 1:
                estimate.add_op("spike_bypass", lanes, count=hops - 1)
            estimate.add_op("spike_bypass", lanes)  # the RECV / ejection
            for hop in xy_route(src, dst):
                nxt = hop.next_tile
                if hop.tile.chip_index(arch) != nxt.chip_index(arch):
                    estimate.interchip_spike_bits += lanes
            delivery_transfers.append(Transfer(src=src, dst=dst, net="spike"))
    # one unpacked wave of point-to-point transfers, priced by the shared
    # congestion/dilation bound of the timing model
    delivery_cycles = serialization_lower_bound(delivery_transfers)

    # --- weight accumulation --------------------------------------------------
    estimate.add_op("core_acc", arch.core_neurons, count=layer.n_cores)
    acc_cycles = arch.long_op_cycles

    # --- partial-sum reduction -------------------------------------------------
    # the default pipeline drains each group's members serially (one member
    # per round, all groups in parallel); price each round with the same
    # serialization bound the delivery wave uses
    reduction_rounds: List[List[Transfer]] = []
    for group in layer.groups:
        head_pos = placement.position(group.head)
        lanes = int(group.lanes.size)
        for position, member in enumerate(group.members):
            src = placement.position(member)
            hops = route_length(src, head_pos)
            estimate.add_op("ps_send", lanes)
            if hops > 1:
                estimate.add_op("ps_bypass", lanes, count=hops - 1)
            estimate.add_op("ps_sum", lanes)
            for hop in xy_route(src, head_pos):
                nxt = hop.next_tile
                if hop.tile.chip_index(arch) != nxt.chip_index(arch):
                    estimate.interchip_ps_bits += lanes * arch.ps_bits
            while position >= len(reduction_rounds):
                reduction_rounds.append([])
            reduction_rounds[position].append(
                Transfer(src=src, dst=head_pos, net="ps"))
    reduce_cycles = sum(serialization_lower_bound(round_transfers)
                        for round_transfers in reduction_rounds)

    # --- spike generation -------------------------------------------------------
    for group in layer.groups:
        estimate.add_op("spike_fire", int(group.lanes.size))
    fire_cycles = 1

    estimate.cycles = delivery_cycles + acc_cycles + reduce_cycles + fire_cycles
    return estimate


# ----------------------------------------------------------------------
# Pure-arithmetic core counting (no LogicalCore materialisation at all)
# ----------------------------------------------------------------------
def estimate_network_cores(network, arch: ArchitectureConfig) -> Dict[str, int]:
    """Per-node logical core counts of a network, by geometry alone.

    Walks the layer graph and applies the same tiling decisions the mapper
    makes — including the *forced* shared tiling of add-joins — without
    building any cores.  The test-suite asserts these counts match
    :func:`build_logical_network` actuals for every benchmark builder, which
    is what keeps this estimator from drifting.
    """
    from ..ir.graph import as_layer_graph
    from ..snn.spec import DenseSpec
    from .conv import estimate_conv_cores
    from .fc import fc_geometry
    from .join import estimate_join_cores

    graph = as_layer_graph(network)
    counts: Dict[str, int] = {}
    for node in graph.topological():
        if node.kind != "fire":
            continue
        specs = list(node.specs)
        if len(specs) > 1:
            counts[node.name] = estimate_join_cores(specs, arch)
        elif isinstance(specs[0], DenseSpec):
            geometry = fc_geometry(specs[0].in_size, specs[0].out_size, arch)
            counts[node.name] = geometry.n_cores
        else:
            # pooling layers are diagonal ConvSpecs; estimate_conv_cores
            # already skips all-zero channel pairs, so one path covers both
            counts[node.name] = estimate_conv_cores(specs[0], arch)
    return counts
