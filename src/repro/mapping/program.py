"""Compiled program representation.

The output of the mapping toolchain (Fig. 3) is a cycle-by-cycle schedule of
atomic operations for every tile, together with the static per-tile
configuration (weights, thresholds) and the bindings that connect the
network's external inputs and outputs to tiles.

The schedule is organised hierarchically:

``Program`` -> list of ``Phase`` (one per layer stage: accumulate, PS-NoC
reduction, spike generation, spike routing) -> list of ``InstructionGroup``.

All instructions inside a group are data-independent and execute "in the same
cycle"; packets injected onto links by a group become visible to consumers in
later groups, which models the per-hop link registers of the NoCs.  The
simulator (:mod:`repro.core.simulator`) therefore charges each group the
latency of its slowest operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..core.config import ArchitectureConfig
from ..core.isa import AtomicOp, op_latency
from ..core.tile import TileCoordinate


class ProgramError(ValueError):
    """Raised on malformed programs (bad bindings, empty groups, ...)."""


@dataclass(frozen=True)
class Instruction:
    """One atomic operation scheduled on one tile."""

    tile: TileCoordinate
    op: AtomicOp

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.tile}: {self.op}"


@dataclass
class InstructionGroup:
    """A set of data-independent instructions that execute concurrently."""

    instructions: List[Instruction] = field(default_factory=list)
    label: str = ""

    def add(self, tile: TileCoordinate, op: AtomicOp) -> None:
        self.instructions.append(Instruction(tile=tile, op=op))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def latency(self, long_op_cycles: int) -> int:
        """Cycle cost of the group: the latency of its slowest op."""
        if not self.instructions:
            return 0
        return max(op_latency(instr.op, long_op_cycles) for instr in self.instructions)


@dataclass
class Phase:
    """A named sequence of instruction groups (e.g. ``fc1/ps-reduce``)."""

    name: str
    groups: List[InstructionGroup] = field(default_factory=list)

    def new_group(self, label: str = "") -> InstructionGroup:
        group = InstructionGroup(label=label)
        self.groups.append(group)
        return group

    def extend(self, groups: Iterable[InstructionGroup]) -> None:
        self.groups.extend(groups)

    @property
    def instruction_count(self) -> int:
        return sum(len(group) for group in self.groups)

    def __iter__(self) -> Iterator[InstructionGroup]:
        return iter(self.groups)


@dataclass
class InputBinding:
    """Connects elements of the network input vector to a tile's axons.

    ``indices`` selects elements of the flattened external input spike vector
    (in the order they should appear on the axons); they are written to the
    tile's axon buffer starting at ``axon_offset`` at the beginning of every
    time step.  Layers whose cores read contiguous input slices (fully
    connected layers) use ``np.arange`` ranges; convolutional patches use the
    scattered pixel indices of the patch.
    """

    tile: TileCoordinate
    indices: np.ndarray
    axon_offset: int = 0

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=np.int64).ravel()
        if self.axon_offset < 0:
            raise ProgramError("input binding axon offset must be >= 0")
        if self.indices.size == 0:
            raise ProgramError("input binding must select at least one input")
        if self.indices.min() < 0:
            raise ProgramError("input binding indices must be non-negative")

    @property
    def count(self) -> int:
        return int(self.indices.size)


@dataclass
class OutputBinding:
    """Connects lanes of a tile's spike register to the network output vector.

    ``lanes[i]`` of the tile's spike register is the network output element
    ``output_indices[i]``.
    """

    tile: TileCoordinate
    lanes: tuple[int, ...]
    output_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        self.lanes = tuple(int(v) for v in self.lanes)
        self.output_indices = tuple(int(v) for v in self.output_indices)
        if not self.lanes:
            raise ProgramError("output binding must select at least one lane")
        if len(self.lanes) != len(self.output_indices):
            raise ProgramError("output binding lanes and indices differ in length")
        if any(lane < 0 for lane in self.lanes):
            raise ProgramError("output lanes must be non-negative")
        if any(index < 0 for index in self.output_indices):
            raise ProgramError("output indices must be non-negative")


@dataclass
class TileConfig:
    """Static configuration of one tile (weights and thresholds)."""

    tile: TileCoordinate
    weights: np.ndarray
    thresholds: Optional[np.ndarray] = None
    label: str = ""


@dataclass
class Program:
    """A complete, executable Shenjing program."""

    arch: ArchitectureConfig
    rows: int
    cols: int
    tile_configs: Dict[TileCoordinate, TileConfig] = field(default_factory=dict)
    phases: List[Phase] = field(default_factory=list)
    input_bindings: List[InputBinding] = field(default_factory=list)
    output_bindings: List[OutputBinding] = field(default_factory=list)
    input_size: int = 0
    output_size: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_tile_config(self, config: TileConfig) -> None:
        if config.tile in self.tile_configs:
            raise ProgramError(f"tile {config.tile} configured twice")
        self.tile_configs[config.tile] = config

    def new_phase(self, name: str) -> Phase:
        phase = Phase(name=name)
        self.phases.append(phase)
        return phase

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def used_tiles(self) -> int:
        """Number of physical cores the mapping uses (Table IV ``#Cores``)."""
        return len(self.tile_configs)

    @property
    def instruction_count(self) -> int:
        return sum(phase.instruction_count for phase in self.phases)

    def cycles_per_timestep(self, long_op_cycles: int | None = None) -> int:
        """Nominal cycles needed to run one time step (no stalls)."""
        cycles = long_op_cycles if long_op_cycles is not None else self.arch.long_op_cycles
        return sum(
            group.latency(cycles)
            for phase in self.phases
            for group in phase.groups
        )

    def validate(self) -> None:
        """Check internal consistency of the program.

        Verifies that every scheduled tile is configured, that bindings stay
        within the fabric and the configured vector sizes, and that lane
        indices fit the core geometry.
        """
        for phase in self.phases:
            for group in phase.groups:
                for instr in group:
                    if not self._in_fabric(instr.tile):
                        raise ProgramError(
                            f"instruction on tile {instr.tile} outside the "
                            f"{self.rows}x{self.cols} fabric (phase {phase.name})"
                        )
        for binding in self.input_bindings:
            if not self._in_fabric(binding.tile):
                raise ProgramError(f"input binding on tile {binding.tile} outside fabric")
            if binding.tile not in self.tile_configs:
                raise ProgramError(f"input binding on unconfigured tile {binding.tile}")
            if binding.axon_offset + binding.count > self.arch.core_inputs:
                raise ProgramError(
                    f"input binding exceeds the {self.arch.core_inputs} axons "
                    f"of tile {binding.tile}"
                )
            if int(binding.indices.max()) >= self.input_size:
                raise ProgramError(
                    "input binding exceeds the declared network input size "
                    f"({self.input_size})"
                )
        covered = np.zeros(self.output_size, dtype=bool)
        for binding in self.output_bindings:
            if not self._in_fabric(binding.tile):
                raise ProgramError(f"output binding on tile {binding.tile} outside fabric")
            if binding.tile not in self.tile_configs:
                raise ProgramError(f"output binding on unconfigured tile {binding.tile}")
            if max(binding.lanes) >= self.arch.core_neurons:
                raise ProgramError(
                    f"output binding lane exceeds the {self.arch.core_neurons} "
                    f"neurons of tile {binding.tile}"
                )
            if max(binding.output_indices) >= self.output_size:
                raise ProgramError(
                    "output binding exceeds the declared network output size "
                    f"({self.output_size})"
                )
            indices = np.asarray(binding.output_indices, dtype=np.int64)
            if covered[indices].any():
                raise ProgramError("output bindings overlap")
            covered[indices] = True
        if self.output_size and not covered.all():
            raise ProgramError("output bindings do not cover the full output vector")

    def _in_fabric(self, tile: TileCoordinate) -> bool:
        return 0 <= tile.row < self.rows and 0 <= tile.col < self.cols

    def describe(self) -> str:
        """A human-readable multi-line summary of the program."""
        lines = [
            f"Program: {self.metadata.get('name', '<unnamed>')}",
            f"  fabric: {self.rows}x{self.cols} tiles, {self.used_tiles} cores used",
            f"  input size: {self.input_size}, output size: {self.output_size}",
            f"  phases: {len(self.phases)}, instructions/timestep: {self.instruction_count}",
            f"  nominal cycles/timestep: {self.cycles_per_timestep()}",
        ]
        for phase in self.phases:
            lines.append(
                f"    {phase.name}: {len(phase.groups)} groups, "
                f"{phase.instruction_count} instructions"
            )
        return "\n".join(lines)
