"""Logical mapping of fully connected layers (Section III.1 and Algorithm 1).

An ``m x n`` fully connected layer is split over ``nrow x ncol`` logical
cores, where ``nrow = ceil(m / Nin)`` and ``ncol = ceil(n / Nout)``.  The
cores of one column all compute partial sums for the same output slice (on
the same lanes — the per-neuron PS NoC constraint), and the partial-sum NoC
adds them together.  Algorithm 1 of the paper schedules that addition as a
logarithmic fold along the column; :func:`algorithm1_schedule` reproduces the
paper's pseudo-code verbatim (it is used by the Fig. 1 benchmark and as an
alternative reduction order in the compiler).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.spec import DenseSpec
from .logical import EXTERNAL_INPUT, LogicalCore, LogicalLayer, MappingError, ReductionGroup


@dataclass(frozen=True)
class FcGeometry:
    """Core-grid geometry of a fully connected layer mapping."""

    inputs: int
    outputs: int
    nrow: int
    ncol: int

    @property
    def n_cores(self) -> int:
        return self.nrow * self.ncol


def fc_geometry(inputs: int, outputs: int, arch: ArchitectureConfig) -> FcGeometry:
    """Number of core rows/columns needed for an FC layer (paper formulas)."""
    if inputs <= 0 or outputs <= 0:
        raise MappingError("FC layer dimensions must be positive")
    nrow = math.ceil(inputs / arch.core_inputs)
    ncol = math.ceil(outputs / arch.core_neurons)
    return FcGeometry(inputs=inputs, outputs=outputs, nrow=nrow, ncol=ncol)


def map_dense(spec: DenseSpec, arch: ArchitectureConfig, source: str = EXTERNAL_INPUT,
              start_index: int = 0, materialize: bool = True) -> LogicalLayer:
    """Map a :class:`DenseSpec` onto logical cores.

    Parameters
    ----------
    spec:
        The quantised fully connected layer.
    arch:
        Architecture description (core geometry).
    source:
        Name of the layer whose outputs feed this layer (or external input).
    start_index:
        First logical core index to assign (indices are network-global).
    materialize:
        When False, weight sub-matrices are not materialised (structure-only
        mapping used for resource/energy estimation of very large networks).
    """
    geometry = fc_geometry(spec.in_size, spec.out_size, arch)
    cores: List[LogicalCore] = []
    groups: List[ReductionGroup] = []
    index = start_index
    for col in range(geometry.ncol):
        out_start = col * arch.core_neurons
        out_stop = min(out_start + arch.core_neurons, spec.out_size)
        outputs = np.arange(out_start, out_stop, dtype=np.int64)
        lanes = np.arange(outputs.size, dtype=np.int64)
        column_cores: List[int] = []
        for row in range(geometry.nrow):
            in_start = row * arch.core_inputs
            in_stop = min(in_start + arch.core_inputs, spec.in_size)
            axons = np.arange(in_start, in_stop, dtype=np.int64)
            lane_outputs = np.full(outputs.size, -1, dtype=np.int64)
            lane_outputs[lanes] = outputs
            weights = None
            if materialize:
                weights = spec.weights[in_start:in_stop, out_start:out_stop].astype(np.int16)
            core = LogicalCore(
                index=index,
                layer=spec.name,
                source=source,
                axon_sources=axons,
                lane_outputs=lane_outputs,
                weights=weights,
            )
            core.check_fits(arch)
            cores.append(core)
            column_cores.append(index)
            index += 1
        groups.append(ReductionGroup(lanes=lanes, core_indices=column_cores,
                                     head=column_cores[0]))
    return LogicalLayer(
        name=spec.name,
        cores=cores,
        groups=groups,
        threshold=spec.threshold,
        out_size=spec.out_size,
    )


# ----------------------------------------------------------------------
# Algorithm 1 of the paper, reproduced literally
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceEntry:
    """One atomic entry of the Algorithm-1 network trace."""

    action: str          # "SEND" or "ADD"
    source: Tuple[int, int]
    destination: Tuple[int, int]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.action == "SEND":
            return f"Send PS{self.source} FROM {self.source} TO {self.destination}"
        return f"Add PS{self.source} TO PS{self.destination}"


def algorithm1_schedule(nrow: int, ncol: int) -> List[List[TraceEntry]]:
    """The paper's Algorithm 1: partial-sum NoC schedule for an FC layer.

    Returns the network trace ``N`` — a list of parallel step lists ``L``,
    alternating SEND steps and ADD steps — for an ``nrow x ncol`` rectangle of
    cores whose row 0 holds the heads.  The schedule folds the rows in
    ``ceil(log2(nrow))`` rounds: in round ``f`` (fold distance), rows
    ``f, f + 2f, ...`` send their partial sums ``f`` rows up and the receiving
    rows accumulate them.
    """
    if nrow <= 0 or ncol <= 0:
        raise MappingError("nrow and ncol must be positive")
    trace: List[List[TraceEntry]] = []
    fold = 1
    while fold < nrow:
        sends: List[TraceEntry] = []
        adds: List[TraceEntry] = []
        for row in range(fold, nrow, 2 * fold):
            for col in range(ncol):
                sends.append(TraceEntry(
                    action="SEND", source=(row, col), destination=(row - fold, col)
                ))
                adds.append(TraceEntry(
                    action="ADD", source=(row, col), destination=(row - fold, col)
                ))
        if sends:
            trace.append(sends)
            trace.append(adds)
        fold *= 2
    return trace


def fold_rounds(nrow: int) -> int:
    """Number of fold rounds Algorithm 1 needs for ``nrow`` rows."""
    if nrow <= 0:
        raise MappingError("nrow must be positive")
    return max(0, math.ceil(math.log2(nrow))) if nrow > 1 else 0


def reduction_order_fold(members: Sequence[int], head: int) -> List[Tuple[int, int]]:
    """Pairwise accumulation order implied by Algorithm 1 for one column.

    Returns a list of ``(src, dst)`` core positions (indices into the column,
    0 being the head) such that applying the additions in order accumulates
    every member into the head.  Used by the compiler when it schedules a
    column reduction as a fold rather than a chain.
    """
    column = [head] + list(members)
    nrow = len(column)
    order: List[Tuple[int, int]] = []
    fold = 1
    while fold < nrow:
        for row in range(fold, nrow, 2 * fold):
            order.append((row, row - fold))
        fold *= 2
    return order
