"""Logical mapping of residual blocks (Section III.3).

A residual block's body layers are mapped like ordinary convolution layers.
The block's *output* layer is special: its reduction groups contain, in
addition to the body cores, the cores of the shortcut *normalisation layer*
(weights ``diag(lambda)``) whose partial sums are computed from the block's
input spikes and travel through the partial-sum NoC to the output cores —
"the partial sum after normalization is then sent to the corresponding cores
of the residual block through PS NoCs for addition".

To make the shortcut's partial sums land on the same lanes as the output
layer's (the per-neuron NoC constraint), both mappings are forced to use the
same output-block tiling.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.spec import ResidualBlockSpec
from .conv import conv_block_size, conv_geometry, map_conv
from .logical import LogicalLayer, MappingError, ReductionGroup


def map_residual_block(block: ResidualBlockSpec, arch: ArchitectureConfig,
                       source: str, start_index: int = 0,
                       materialize: bool = True) -> List[LogicalLayer]:
    """Map a residual block onto logical layers.

    Returns one :class:`LogicalLayer` per body layer; the last one is merged
    with the shortcut normalisation cores (its reduction groups gain the
    shortcut cores, whose ``source`` is the block's input layer).
    """
    layers: List[LogicalLayer] = []
    index = start_index
    previous_source = source
    for spec in block.body[:-1]:
        layer = map_conv(spec, arch, source=previous_source, start_index=index,
                         materialize=materialize)
        layers.append(layer)
        index += layer.n_cores
        previous_source = layer.name

    output_spec = block.body[-1]
    # Both the output layer and the shortcut must use the same output tiling
    # so their partial sums align lane by lane.
    block_size = min(
        conv_block_size(output_spec, arch)[0],
        conv_block_size(block.shortcut, arch)[0],
    )
    forced_block = (block_size, block_size)
    output_layer = map_conv(output_spec, arch, source=previous_source,
                            start_index=index, materialize=materialize,
                            block=forced_block)
    index += output_layer.n_cores
    shortcut_layer = map_conv(block.shortcut, arch, source=source,
                              start_index=index, materialize=materialize,
                              block=forced_block)
    index += shortcut_layer.n_cores

    merged = _merge_shortcut(block, output_layer, shortcut_layer)
    layers.append(merged)
    return layers


def estimate_residual_cores(block: ResidualBlockSpec, arch: ArchitectureConfig) -> int:
    """Number of logical cores a residual block needs (body + shortcut)."""
    from .conv import estimate_conv_cores  # local import to avoid cycles in docs

    total = sum(estimate_conv_cores(spec, arch) for spec in block.body)
    total += estimate_conv_cores(block.shortcut, arch)
    return total


def _merge_shortcut(block: ResidualBlockSpec, output_layer: LogicalLayer,
                    shortcut_layer: LogicalLayer) -> LogicalLayer:
    """Fold the shortcut layer's cores into the output layer's reduction groups."""
    if len(output_layer.groups) != len(shortcut_layer.groups):
        raise MappingError(
            f"residual block {block.name}: output layer has "
            f"{len(output_layer.groups)} groups but the shortcut has "
            f"{len(shortcut_layer.groups)} — tilings are misaligned"
        )
    merged_groups: List[ReductionGroup] = []
    shortcut_cores = {core.index: core for core in shortcut_layer.cores}
    for out_group, short_group in zip(output_layer.groups, shortcut_layer.groups):
        out_head = output_layer.core_by_index(out_group.head)
        short_head = shortcut_layer.core_by_index(short_group.head)
        if not np.array_equal(out_group.lanes, short_group.lanes):
            raise MappingError(
                f"residual block {block.name}: group lane sets differ between "
                "output and shortcut layers"
            )
        if not np.array_equal(out_head.lane_outputs[out_group.lanes],
                              short_head.lane_outputs[short_group.lanes]):
            raise MappingError(
                f"residual block {block.name}: group outputs differ between "
                "output and shortcut layers"
            )
        merged_groups.append(ReductionGroup(
            lanes=out_group.lanes.copy(),
            core_indices=list(out_group.core_indices) + list(short_group.core_indices),
            head=out_group.head,
        ))
    all_cores = list(output_layer.cores) + [shortcut_cores[i] for i in shortcut_cores]
    for core in shortcut_layer.cores:
        core.layer = output_layer.name
    return LogicalLayer(
        name=output_layer.name,
        cores=all_cores,
        groups=merged_groups,
        threshold=output_layer.threshold,
        out_size=output_layer.out_size,
    )
