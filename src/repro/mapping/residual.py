"""Residual blocks as add-joins (Section III.3) — compatibility wrappers.

Nothing in the compiler special-cases residual blocks any more: the
``graph-build`` pass (:func:`repro.ir.graph.graph_from_snn`) expands a
:class:`~repro.snn.spec.ResidualBlockSpec` into plain fire nodes plus an
add-join node, and ``logical-map`` handles that join through the *generic*
k-way partial-sum add-join mapper (:func:`repro.mapping.join.map_add_join`)
— a residual block is simply its two-contribution case.  The block's output
layer and its shortcut normalisation layer share one output tiling and one
set of reduction groups, so the shortcut's partial sums travel through the
PS NoC to the output cores — "the partial sum after normalization is then
sent to the corresponding cores of the residual block through PS NoCs for
addition".

This module only keeps the historical per-block API alive as thin wrappers
over that generic mapper, for callers (and regression tests) that want to
map or count a single block outside a full graph compile.  New code should
build a :class:`~repro.ir.graph.LayerGraph` (or let ``graph-build`` expand
the spec) instead of calling these directly.
"""

from __future__ import annotations

from typing import List

from ..core.config import ArchitectureConfig
from ..snn.spec import ResidualBlockSpec
from .conv import estimate_conv_cores, map_conv
from .join import estimate_join_cores, map_add_join
from .logical import LogicalLayer


def map_residual_block(block: ResidualBlockSpec, arch: ArchitectureConfig,
                       source: str, start_index: int = 0,
                       materialize: bool = True) -> List[LogicalLayer]:
    """Map a residual block onto logical layers (legacy per-block API).

    Returns one :class:`LogicalLayer` per body layer; the last one is the
    add-join of the block's output layer and its shortcut normalisation
    layer (whose cores read the block's input layer ``source``).  The
    pipeline path produces the identical mapping by expanding the block in
    ``graph-build`` and joining in ``logical-map``.
    """
    layers: List[LogicalLayer] = []
    index = start_index
    previous_source = source
    for spec in block.body[:-1]:
        layer = map_conv(spec, arch, source=previous_source, start_index=index,
                         materialize=materialize)
        layers.append(layer)
        index += layer.n_cores
        previous_source = layer.name
    merged = map_add_join(
        block.body[-1].name,
        [(block.body[-1], previous_source), (block.shortcut, source)],
        arch, start_index=index, materialize=materialize,
        threshold=block.threshold,
    )
    layers.append(merged)
    return layers


def estimate_residual_cores(block: ResidualBlockSpec, arch: ArchitectureConfig) -> int:
    """Number of logical cores a residual block needs (body + shortcut).

    The output layer and the shortcut are counted with the *forced* shared
    tiling of the add-join, matching what the mapper actually produces.
    """
    total = sum(estimate_conv_cores(spec, arch) for spec in block.body[:-1])
    total += estimate_join_cores([block.body[-1], block.shortcut], arch)
    return total
