"""End-to-end compilation of an abstract SNN onto Shenjing (Fig. 3).

The compilation itself is a pass pipeline over the layer-graph IR
(:mod:`repro.ir`): ``graph-build`` normalises the network (expanding
residual blocks into plain add-join DAG patterns), ``logical-map`` splits
every node over logical cores with its partial-sum reduction groups,
``placement`` arranges the cores on the tile fabric, ``route-pack`` turns
the logical movements into XY-routed conflict-free waves and
``emit-program`` produces the cycle-by-cycle
:class:`~repro.mapping.program.Program` of atomic operations (Table I).

This module keeps the historical entry points — ``build_logical_network``
and ``compile_network`` — as thin wrappers over that pipeline, plus the
:class:`CompiledNetwork` result container the rest of the system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.config import ArchitectureConfig
from ..snn.spec import SnnNetwork
from .logical import LogicalNetwork
from .placement import Placement
from .program import Program


@dataclass
class CompiledNetwork:
    """The result of compiling a network for Shenjing.

    ``snn`` is set when the input was a flat :class:`SnnNetwork`; DAG inputs
    carry only ``graph``.  ``schedule`` is populated when the pipeline ran
    through the engine's ``lower``/``optimize`` passes
    (``compile(..., to="schedule")``), ``routes`` carries the packed
    :class:`~repro.ir.pipeline.RoutePlan` (the input of the
    :mod:`repro.opt` NoC cost model), ``timing`` the
    :class:`~repro.timing.TimingEstimate` the ``timing-model`` pass derived
    from those waves, and ``trace`` records per-pass timing and summaries.
    """

    program: Program
    logical: LogicalNetwork
    placement: Placement
    snn: Optional[SnnNetwork] = None
    graph: Optional[object] = None
    schedule: Optional[object] = None
    routes: Optional[object] = None
    timing: Optional[object] = None
    trace: List[object] = field(default_factory=list)

    @property
    def network(self):
        """The compiled network (the SnnNetwork if given, else the graph)."""
        return self.snn if self.snn is not None else self.graph

    @property
    def name(self) -> str:
        network = self.network
        return network.name if network is not None else "<unnamed>"

    @property
    def core_count(self) -> int:
        return self.logical.n_cores

    @property
    def chips_used(self) -> int:
        return self.placement.chips_used()

    def describe(self) -> str:
        lines = [
            f"CompiledNetwork '{self.name}': {self.core_count} cores, "
            f"{self.chips_used} chip(s), fabric {self.placement.rows}x{self.placement.cols}",
        ]
        for layer_name, count in self.logical.core_count_by_layer().items():
            lines.append(f"  {layer_name:<24} {count} cores")
        lines.append(self.program.describe())
        return "\n".join(lines)

    def describe_trace(self) -> str:
        """Per-pass timing/summary of the compilation (empty if untraced)."""
        return "\n".join(str(record) for record in self.trace)


# ----------------------------------------------------------------------
# Logical mapping phase
# ----------------------------------------------------------------------
def build_logical_network(network, arch: ArchitectureConfig,
                          materialize: bool = True) -> LogicalNetwork:
    """Map every layer of ``network`` onto logical cores (no placement yet).

    Accepts an :class:`SnnNetwork` or a :class:`~repro.ir.graph.LayerGraph`;
    runs the ``graph-build`` and ``logical-map`` passes.
    """
    from ..ir.graph import as_layer_graph
    from ..ir.pipeline import logical_map

    return logical_map(as_layer_graph(network), arch, materialize=materialize)


# ----------------------------------------------------------------------
# Physical mapping phase
# ----------------------------------------------------------------------
def compile_network(network, arch: ArchitectureConfig,
                    rows: Optional[int] = None,
                    wave_packing: bool = True,
                    optimize_noc: bool = False,
                    metrics=None) -> CompiledNetwork:
    """Compile a network into an executable Shenjing program.

    Runs the full default pass pipeline (with the :mod:`repro.opt` NoC
    passes when ``optimize_noc`` is set); see :func:`repro.ir.compile` for
    custom pipelines, per-pass validation and schedule-producing runs.
    ``metrics`` (a :class:`repro.obs.MetricsRegistry`) mirrors the pass
    timings as ``compile/<pass>`` spans.
    """
    from ..ir.pipeline import compile as ir_compile

    return ir_compile(network, arch, rows=rows, wave_packing=wave_packing,
                      optimize_noc=optimize_noc, metrics=metrics)


def _build_program(logical: LogicalNetwork, placement: Placement,
                   arch: ArchitectureConfig, wave_packing: bool) -> Program:
    """Route and emit a program from a pre-built logical mapping/placement."""
    from ..ir.pipeline import build_routes, emit_program

    routes = build_routes(logical, placement, wave_packing=wave_packing)
    return emit_program(logical, placement, routes, arch)
