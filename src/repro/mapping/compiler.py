"""End-to-end compilation of an abstract SNN onto Shenjing (Fig. 3).

``build_logical_network`` performs the *logical mapping* phase: every layer
of the :class:`~repro.snn.spec.SnnNetwork` is split over logical cores with
its partial-sum reduction groups.  ``compile_network`` then performs the
*physical mapping* phase: cores are placed on the tile fabric, the logical
partial-sum and spike movements become XY-routed transfers packed into
conflict-free waves, and everything is emitted as a cycle-by-cycle
:class:`~repro.mapping.program.Program` of atomic operations (Table I) that
the functional simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import ArchitectureConfig
from ..core.isa import CoreAccumulate, Direction, PsBypass, PsSend, PsSum, SpikeBypass, \
    SpikeFire, SpikeReceive, SpikeSend
from ..core.tile import TileCoordinate
from ..snn.spec import ConvSpec, DenseSpec, ResidualBlockSpec, SnnNetwork
from .conv import map_conv
from .fc import map_dense
from .logical import EXTERNAL_INPUT, LogicalLayer, LogicalNetwork, MappingError
from .placement import Placement, place_network
from .pool import is_pool_spec, map_pool
from .program import InputBinding, OutputBinding, Phase, Program, TileConfig
from .residual import map_residual_block
from .routing import Transfer, Wave, pack_waves, serial_waves
from .spike_mapping import canonicalise_axons


@dataclass
class CompiledNetwork:
    """The result of compiling an SNN for Shenjing."""

    program: Program
    logical: LogicalNetwork
    placement: Placement
    snn: SnnNetwork

    @property
    def core_count(self) -> int:
        return self.logical.n_cores

    @property
    def chips_used(self) -> int:
        return self.placement.chips_used()

    def describe(self) -> str:
        lines = [
            f"CompiledNetwork '{self.snn.name}': {self.core_count} cores, "
            f"{self.chips_used} chip(s), fabric {self.placement.rows}x{self.placement.cols}",
        ]
        for layer_name, count in self.logical.core_count_by_layer().items():
            lines.append(f"  {layer_name:<24} {count} cores")
        lines.append(self.program.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Logical mapping phase
# ----------------------------------------------------------------------
def build_logical_network(snn: SnnNetwork, arch: ArchitectureConfig,
                          materialize: bool = True) -> LogicalNetwork:
    """Map every layer of ``snn`` onto logical cores (no placement yet)."""
    layers: List[LogicalLayer] = []
    index = 0
    source = EXTERNAL_INPUT
    for spec in snn.layers:
        if isinstance(spec, DenseSpec):
            new_layers = [map_dense(spec, arch, source=source, start_index=index,
                                    materialize=materialize)]
        elif isinstance(spec, ConvSpec):
            mapper = map_pool if is_pool_spec(spec) else map_conv
            new_layers = [mapper(spec, arch, source=source, start_index=index,
                                 materialize=materialize)]
        elif isinstance(spec, ResidualBlockSpec):
            new_layers = map_residual_block(spec, arch, source=source,
                                            start_index=index,
                                            materialize=materialize)
        else:
            raise MappingError(f"unsupported layer spec {type(spec).__name__}")
        for layer in new_layers:
            layers.append(layer)
            index += layer.n_cores
        source = new_layers[-1].name
    network = LogicalNetwork(
        name=snn.name,
        input_size=snn.input_size,
        layers=layers,
        metadata={"timesteps": snn.timesteps},
    )
    network.validate(arch)
    return network


# ----------------------------------------------------------------------
# Physical mapping phase
# ----------------------------------------------------------------------
def compile_network(snn: SnnNetwork, arch: ArchitectureConfig,
                    rows: Optional[int] = None,
                    wave_packing: bool = True) -> CompiledNetwork:
    """Compile an abstract SNN into an executable Shenjing program."""
    logical = build_logical_network(snn, arch, materialize=True)
    placement = place_network(logical, arch, rows=rows)
    program = _build_program(snn, logical, placement, arch, wave_packing)
    return CompiledNetwork(program=program, logical=logical, placement=placement, snn=snn)


def _build_program(snn: SnnNetwork, logical: LogicalNetwork, placement: Placement,
                   arch: ArchitectureConfig, wave_packing: bool) -> Program:
    program = Program(
        arch=arch,
        rows=placement.rows,
        cols=placement.cols,
        input_size=snn.input_size,
        output_size=snn.output_size,
        metadata={"name": snn.name, "timesteps": snn.timesteps},
    )
    pack = pack_waves if wave_packing else serial_waves

    # Logical spike-NoC mapping: locate every layer's outputs, then rearrange
    # each consumer core's axons into producer-contiguous, lane-ascending
    # order and record the resulting delivery segments.  This must happen
    # before tile configuration is emitted, because canonicalisation permutes
    # the weight rows together with the axons.
    locators: Dict[str, Dict[int, Tuple[int, int]]] = {
        layer.name: layer.output_locations() for layer in logical.layers
    }
    segments_by_core: Dict[int, list] = {}
    for layer in logical.layers:
        for core in layer.cores:
            if core.source == EXTERNAL_INPUT:
                continue
            segments_by_core[core.index] = canonicalise_axons(core, locators[core.source])

    _emit_tile_configs(program, logical, placement, arch)

    for layer in logical.layers:
        _emit_delivery_phase(program, layer, placement, segments_by_core, pack)
        _emit_accumulate_phase(program, layer, placement, arch)
        _emit_reduction_phase(program, layer, placement, pack)
        _emit_fire_phase(program, layer, placement)

    _emit_output_bindings(program, logical.layers[-1], placement)
    program.validate()
    return program


def _emit_tile_configs(program: Program, logical: LogicalNetwork,
                       placement: Placement, arch: ArchitectureConfig) -> None:
    for layer in logical.layers:
        for core in layer.cores:
            if core.weights is None:
                raise MappingError(
                    f"core {core.index} of {layer.name} has no materialised weights; "
                    "compile_network requires materialize=True mappings"
                )
            weights = np.zeros((arch.core_inputs, arch.core_neurons), dtype=np.int16)
            weights[:core.n_axons, :core.lane_outputs.size] = core.weights
            thresholds = np.full(arch.core_neurons, layer.threshold, dtype=np.int64)
            program.add_tile_config(TileConfig(
                tile=placement.position(core.index),
                weights=weights,
                thresholds=thresholds,
                label=f"{layer.name}/core{core.index}",
            ))


def _emit_delivery_phase(program: Program, layer: LogicalLayer,
                         placement: Placement, segments_by_core: Dict[int, list],
                         pack) -> None:
    """Route the source layers' output spikes onto this layer's axons."""
    transfers: List[Transfer] = []
    for core in layer.cores:
        if core.source == EXTERNAL_INPUT:
            program.input_bindings.append(InputBinding(
                tile=placement.position(core.index),
                indices=core.axon_sources.copy(),
                axon_offset=0,
            ))
            continue
        consumer_tile = placement.position(core.index)
        for segment in segments_by_core[core.index]:
            producer_tile = placement.position(segment.producer_core)
            transfers.append(Transfer(
                src=producer_tile,
                dst=consumer_tile,
                net="spike",
                lanes=frozenset(int(lane) for lane in segment.lanes),
                payload={"axon_offset": segment.axon_offset},
            ))
    if not transfers:
        return
    phase = program.new_phase(f"{layer.name}/deliver")
    for wave in pack(transfers):
        _emit_spike_wave(phase, wave)


def _emit_accumulate_phase(program: Program, layer: LogicalLayer,
                           placement: Placement, arch: ArchitectureConfig) -> None:
    phase = program.new_phase(f"{layer.name}/accumulate")
    group = phase.new_group("acc")
    for core in layer.cores:
        group.add(placement.position(core.index), CoreAccumulate(banks=arch.sram_banks))


def _emit_reduction_phase(program: Program, layer: LogicalLayer,
                          placement: Placement, pack) -> None:
    """Accumulate each reduction group's partial sums at its head core.

    The accumulation proceeds in rounds: in round ``r`` every group whose
    member list is at least ``r + 1`` long sends its ``r``-th member's local
    partial sum to the head, which adds it (``SUM``, with ``$CONSEC`` set for
    every round after the first).  Different groups' transfers run in
    parallel waves; a single head only ever consumes one packet per round.
    """
    max_members = max((len(group.members) for group in layer.groups), default=0)
    if max_members == 0:
        return
    phase = program.new_phase(f"{layer.name}/ps-reduce")
    for round_index in range(max_members):
        transfers: List[Transfer] = []
        for group in layer.groups:
            members = group.members
            if round_index >= len(members):
                continue
            member = members[round_index]
            transfers.append(Transfer(
                src=placement.position(member),
                dst=placement.position(group.head),
                net="ps",
                lanes=frozenset(int(lane) for lane in group.lanes),
                payload={"consecutive": round_index > 0},
            ))
        for wave in pack(transfers):
            _emit_ps_wave(phase, wave)


def _emit_fire_phase(program: Program, layer: LogicalLayer, placement: Placement) -> None:
    phase = program.new_phase(f"{layer.name}/fire")
    group = phase.new_group("spike")
    for reduction in layer.groups:
        lanes = frozenset(int(lane) for lane in reduction.lanes)
        group.add(
            placement.position(reduction.head),
            SpikeFire(use_noc_sum=len(reduction.core_indices) > 1, lanes=lanes),
        )


def _emit_output_bindings(program: Program, last_layer: LogicalLayer,
                          placement: Placement) -> None:
    for group in last_layer.groups:
        head = last_layer.core_by_index(group.head)
        lanes = tuple(int(lane) for lane in group.lanes)
        outputs = tuple(int(head.lane_outputs[lane]) for lane in group.lanes)
        program.output_bindings.append(OutputBinding(
            tile=placement.position(group.head),
            lanes=lanes,
            output_indices=outputs,
        ))


# ----------------------------------------------------------------------
# Wave expansion into instruction groups
# ----------------------------------------------------------------------
def _emit_spike_wave(phase: Phase, wave: Wave) -> None:
    routes = [transfer.route for transfer in wave.transfers]
    depth = max(len(route) for route in routes) + 1
    for step in range(depth):
        group = phase.new_group(f"spike-wave-step{step}")
        for transfer, route in zip(wave.transfers, routes):
            if step < len(route):
                hop = route[step]
                if step == 0:
                    group.add(hop.tile, SpikeSend(dst=hop.direction, lanes=transfer.lanes))
                else:
                    incoming = route[step - 1].direction.opposite
                    group.add(hop.tile, SpikeBypass(
                        src=incoming, dst=hop.direction, lanes=transfer.lanes,
                    ))
            elif step == len(route):
                incoming = route[-1].direction.opposite
                group.add(transfer.dst, SpikeReceive(
                    src=incoming,
                    axon_offset=int(transfer.payload["axon_offset"]),
                    lanes=transfer.lanes,
                ))


def _emit_ps_wave(phase: Phase, wave: Wave) -> None:
    routes = [transfer.route for transfer in wave.transfers]
    depth = max(len(route) for route in routes) + 1
    for step in range(depth):
        group = phase.new_group(f"ps-wave-step{step}")
        for transfer, route in zip(wave.transfers, routes):
            if step < len(route):
                hop = route[step]
                if step == 0:
                    group.add(hop.tile, PsSend(
                        dst=hop.direction,
                        use_sum_buf=bool(transfer.payload.get("use_sum_buf", False)),
                        lanes=transfer.lanes,
                    ))
                else:
                    incoming = route[step - 1].direction.opposite
                    group.add(hop.tile, PsBypass(
                        src=incoming, dst=hop.direction, lanes=transfer.lanes,
                    ))
            elif step == len(route):
                incoming = route[-1].direction.opposite
                group.add(transfer.dst, PsSum(
                    src=incoming,
                    consecutive=bool(transfer.payload.get("consecutive", False)),
                    lanes=transfer.lanes,
                ))
