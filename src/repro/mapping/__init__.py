"""Software mapping toolchain (Fig. 3 of the paper).

Logical mapping (layer splitting, PS adder trees, spike-NoC source/destination
matching), physical mapping (greedy placement, deterministic XY routing,
conflict-free wave packing) and compilation into a cycle-by-cycle program of
atomic operations, plus a structural estimator for very large networks.
"""

from .compiler import CompiledNetwork, build_logical_network, compile_network
from .conv import ConvGeometry, conv_block_size, conv_geometry, estimate_conv_cores, map_conv
from .estimator import LayerEstimate, MappingEstimate, estimate_mapping, estimate_network_cores
from .fc import FcGeometry, algorithm1_schedule, fc_geometry, fold_rounds, map_dense
from .join import estimate_join_cores, join_block_size, map_add_join
from .logical import (
    EXTERNAL_INPUT,
    LogicalCore,
    LogicalLayer,
    LogicalNetwork,
    MappingError,
    ReductionGroup,
    VirtualSource,
)
from .placement import Placement, fabric_summary, place_network
from .pool import estimate_pool_cores, is_pool_spec, map_pool
from .program import (
    InputBinding,
    Instruction,
    InstructionGroup,
    OutputBinding,
    Phase,
    Program,
    ProgramError,
    TileConfig,
)
from .residual import estimate_residual_cores, map_residual_block
from .routing import (
    Hop,
    Transfer,
    Wave,
    pack_waves,
    route_length,
    serial_waves,
    total_hop_count,
    verify_waves,
    xy_route,
)
from .spike_mapping import DeliverySegment, canonicalise_axons, segments_summary

__all__ = [
    "CompiledNetwork",
    "ConvGeometry",
    "DeliverySegment",
    "EXTERNAL_INPUT",
    "FcGeometry",
    "Hop",
    "InputBinding",
    "Instruction",
    "InstructionGroup",
    "LayerEstimate",
    "LogicalCore",
    "LogicalLayer",
    "LogicalNetwork",
    "MappingError",
    "MappingEstimate",
    "OutputBinding",
    "Phase",
    "Placement",
    "Program",
    "ProgramError",
    "ReductionGroup",
    "TileConfig",
    "Transfer",
    "VirtualSource",
    "Wave",
    "algorithm1_schedule",
    "build_logical_network",
    "canonicalise_axons",
    "compile_network",
    "conv_block_size",
    "conv_geometry",
    "estimate_conv_cores",
    "estimate_join_cores",
    "estimate_mapping",
    "estimate_network_cores",
    "estimate_pool_cores",
    "estimate_residual_cores",
    "fabric_summary",
    "fc_geometry",
    "fold_rounds",
    "is_pool_spec",
    "join_block_size",
    "map_add_join",
    "map_conv",
    "map_dense",
    "map_pool",
    "map_residual_block",
    "pack_waves",
    "place_network",
    "route_length",
    "segments_summary",
    "serial_waves",
    "total_hop_count",
    "verify_waves",
    "xy_route",
]
