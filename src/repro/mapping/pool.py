"""Logical mapping of average-pooling layers.

In the spiking domain average pooling is a strided convolution with a
diagonal kernel (:func:`repro.snn.spec.pool_spec`), so its mapping reuses the
convolution mapper.  Because the kernel slice between different channels is
all-zero, :func:`repro.mapping.conv.map_conv` creates exactly one core per
(output block, channel) pair and no cross-core partial-sum accumulation is
needed — each pooling core fires locally.
"""

from __future__ import annotations

from ..core.config import ArchitectureConfig
from ..snn.spec import ConvSpec
from .conv import conv_geometry, estimate_conv_cores, map_conv
from .logical import EXTERNAL_INPUT, LogicalLayer, MappingError


def is_pool_spec(spec: ConvSpec) -> bool:
    """True when a ConvSpec has the structure produced by ``pool_spec``.

    A pooling layer has a diagonal channel structure (no cross-channel
    weights), stride equal to its kernel size and no padding.
    """
    if spec.stride != spec.kernel or spec.pad != 0:
        return False
    if spec.in_channels != spec.out_channels:
        return False
    for ci in range(spec.in_channels):
        for co in range(spec.out_channels):
            if ci != co and bool((spec.weights[:, :, ci, co] != 0).any()):
                return False
    return True


def map_pool(spec: ConvSpec, arch: ArchitectureConfig, source: str = EXTERNAL_INPUT,
             start_index: int = 0, materialize: bool = True) -> LogicalLayer:
    """Map a pooling layer (a diagonal strided ConvSpec) onto logical cores."""
    if not is_pool_spec(spec):
        raise MappingError(
            f"layer {spec.name} is not a pooling layer; use map_conv instead"
        )
    return map_conv(spec, arch, source=source, start_index=start_index,
                    materialize=materialize)


def estimate_pool_cores(spec: ConvSpec, arch: ArchitectureConfig) -> int:
    """Number of cores a pooling layer needs (one per block and channel)."""
    if not is_pool_spec(spec):
        raise MappingError(f"layer {spec.name} is not a pooling layer")
    return estimate_conv_cores(spec, arch)
