"""Physical placement of logical cores onto the tile fabric (Section III).

The paper uses a greedy algorithm that allocates adjacent layers next to each
other in rectangles while minimising the number of chips and the cost of data
movement.  This module implements the same idea:

* layers are placed left to right, each starting on a fresh column, so a
  layer occupies a rectangle of columns and consecutive layers are adjacent;
* within a layer, each reduction group is packed vertically (head on top,
  members below) so the partial-sum accumulation runs along short vertical
  paths — the arrangement shown in Fig. 1 for the MNIST MLP;
* a group that does not fit in the remaining rows of the current column
  starts a new column; groups taller than the fabric wrap (snake) into the
  next column.

The fabric height defaults to the chip's row count; the fabric grows in
columns, and every ``chip_cols`` columns start a new chip (multi-chip
systems, accounted for by the inter-chip I/O energy model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.config import ArchitectureConfig
from ..core.tile import TileCoordinate
from .logical import LogicalNetwork, MappingError


@dataclass
class Placement:
    """Result of physical placement."""

    arch: ArchitectureConfig
    positions: Dict[int, TileCoordinate] = field(default_factory=dict)
    rows: int = 0
    cols: int = 0
    layer_columns: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def position(self, core_index: int) -> TileCoordinate:
        try:
            return self.positions[core_index]
        except KeyError as exc:
            raise MappingError(f"core {core_index} has not been placed") from exc

    @property
    def n_placed(self) -> int:
        return len(self.positions)

    def chips_used(self) -> int:
        """Number of chips touched by the placement (784 tiles per chip)."""
        chips = {
            coordinate.chip_index(self.arch) for coordinate in self.positions.values()
        }
        return max(1, len(chips))

    def occupancy(self) -> float:
        """Fraction of the bounding fabric actually occupied by cores."""
        if self.rows == 0 or self.cols == 0:
            return 0.0
        return self.n_placed / (self.rows * self.cols)

    def validate(self) -> None:
        seen: Dict[TileCoordinate, int] = {}
        for core, coordinate in self.positions.items():
            if coordinate.row < 0 or coordinate.row >= self.rows:
                raise MappingError(f"core {core} placed outside fabric rows")
            if coordinate.col < 0 or coordinate.col >= self.cols:
                raise MappingError(f"core {core} placed outside fabric columns")
            if coordinate in seen:
                raise MappingError(
                    f"cores {seen[coordinate]} and {core} both placed at {coordinate}"
                )
            seen[coordinate] = core


def place_network(network: LogicalNetwork, arch: ArchitectureConfig,
                  rows: Optional[int] = None,
                  column_aligned_groups: bool = False,
                  layer_fresh_columns: bool = False) -> Placement:
    """Greedy rectangle placement of a logical network.

    Parameters
    ----------
    network:
        The logical mapping to place.
    arch:
        Architecture description (chip geometry).
    rows:
        Fabric height in tiles; defaults to one chip's row count.
    column_aligned_groups:
        When True, a reduction group that fits in one column never straddles
        two columns (the Fig. 1 arrangement: head on top, members below).
        The default packs cores densely, which is what keeps the MNIST CNN on
        a single chip and the CIFAR CNN on 4 chips as in Table IV.
    layer_fresh_columns:
        When True, every layer starts on a fresh column so the layer regions
        are clean rectangles (costs up to one column per layer).
    """
    rows = arch.chip_rows if rows is None else rows
    if rows <= 0:
        raise MappingError("fabric must have at least one row")
    placement = Placement(arch=arch, rows=rows)

    col = 0
    row = 0

    def advance() -> None:
        nonlocal row, col
        row += 1
        if row >= rows:
            row = 0
            col += 1

    for layer in network.layers:
        if layer_fresh_columns and row != 0:
            row = 0
            col += 1
        first_col = col
        for group in layer.groups:
            group_size = group.size
            if column_aligned_groups and group_size <= rows and row + group_size > rows:
                row = 0
                col += 1
            ordered = [group.head] + group.members
            for core_index in ordered:
                placement.positions[core_index] = TileCoordinate(row, col)
                advance()
        last_col = col if row > 0 else max(first_col, col - 1)
        placement.layer_columns[layer.name] = (first_col, last_col)

    placement.cols = max(coordinate.col for coordinate in placement.positions.values()) + 1
    placement.validate()
    return placement


def fabric_summary(placement: Placement) -> Dict[str, float]:
    """Printable summary of the placement (used by reports and benches)."""
    return {
        "rows": placement.rows,
        "cols": placement.cols,
        "cores": placement.n_placed,
        "chips": placement.chips_used(),
        "occupancy": round(placement.occupancy(), 4),
    }
