"""Physical NoC routing: XY routes, transfers and wave packing.

After placement, every logical partial-sum or spike movement becomes a
*transfer* between two tiles.  Transfers are expanded into per-hop atomic
operations (SEND on the first hop, BYPASS on intermediate hops, and a
consuming operation — SUM/RECV for partial sums, RECV for spikes — at the
destination) along a deterministic X-then-Y route, exactly the paper's
"simple deterministic XY routing".

Because the NoCs have no buffers or flow control, two packets must never use
the same directed link in the same cycle.  The compile-time *wave packing*
pass groups transfers into waves such that, hop index by hop index, no two
transfers in a wave share a directed link or a destination input register;
transfers that would conflict wait for a later wave — the paper's "a packet
is scheduled to wait if the output port/link is occupied".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.isa import Direction
from ..core.tile import TileCoordinate
from .logical import MappingError


@dataclass(frozen=True)
class Hop:
    """One hop of a route: the directed link leaving ``tile`` towards ``direction``."""

    tile: TileCoordinate
    direction: Direction

    @property
    def next_tile(self) -> TileCoordinate:
        drow, dcol = self.direction.delta()
        return TileCoordinate(self.tile.row + drow, self.tile.col + dcol)


def xy_route(src: TileCoordinate, dst: TileCoordinate) -> List[Hop]:
    """Deterministic X-then-Y route from ``src`` to ``dst`` (exclusive of dst).

    "X" is the column (east/west) direction and "Y" the row (north/south)
    direction; the route first aligns the column, then the row.
    """
    if src == dst:
        raise MappingError("cannot route a packet from a tile to itself")
    hops: List[Hop] = []
    current = src
    while current.col != dst.col:
        direction = Direction.EAST if dst.col > current.col else Direction.WEST
        hops.append(Hop(tile=current, direction=direction))
        current = hops[-1].next_tile
    while current.row != dst.row:
        direction = Direction.SOUTH if dst.row > current.row else Direction.NORTH
        hops.append(Hop(tile=current, direction=direction))
        current = hops[-1].next_tile
    return hops


def route_length(src: TileCoordinate, dst: TileCoordinate) -> int:
    """Manhattan distance between two tiles (number of hops of the XY route)."""
    return abs(src.row - dst.row) + abs(src.col - dst.col)


@dataclass
class Transfer:
    """A packet movement from ``src`` to ``dst`` plus its payload description.

    ``net`` is ``"ps"`` or ``"spike"``; ``lanes`` the lane subset carried
    (``None`` = all lanes); ``payload`` carries scheduling details consumed by
    the compiler when it turns the transfer into atomic operations (e.g. the
    axon offset of a spike delivery, or whether a PS send injects the local
    partial sum or the router's accumulated sum).

    ``via`` is an ordered tuple of waypoint tiles the packet visits on its
    way to ``dst`` (the route is the concatenation of XY segments through
    them).  Multicast chains built by :mod:`repro.opt.multicast` use the
    waypoints as intermediate delivery points: ``payload["ejects"]`` lists
    ``(hop_index, axon_offset)`` pairs marking the hops whose BYPASS also
    ejects the packet into the local core (the paper's eject-and-forward
    multicast, Section II).
    """

    src: TileCoordinate
    dst: TileCoordinate
    net: str
    lanes: Optional[FrozenSet[int]] = None
    payload: dict = field(default_factory=dict)
    via: Tuple[TileCoordinate, ...] = ()

    def __post_init__(self) -> None:
        if self.net not in ("ps", "spike"):
            raise MappingError(f"unknown NoC {self.net!r}")
        if self.src == self.dst:
            raise MappingError("transfer source and destination must differ")
        self.via = tuple(self.via)
        waypoints = (self.src,) + self.via + (self.dst,)
        for a, b in zip(waypoints, waypoints[1:]):
            if a == b:
                raise MappingError(
                    f"transfer visits tile {a} twice in a row (degenerate "
                    "multicast waypoint)"
                )
        total = sum(route_length(a, b) for a, b in zip(waypoints, waypoints[1:]))
        for hop_index, axon_offset in self.payload.get("ejects", ()):
            if not 0 < hop_index < total:
                raise MappingError(
                    f"eject hop index {hop_index} outside the route "
                    f"(1..{total - 1})"
                )
            if axon_offset < 0:
                raise MappingError("eject axon offset must be non-negative")

    @property
    def route(self) -> List[Hop]:
        hops: List[Hop] = []
        waypoints = (self.src,) + self.via + (self.dst,)
        for a, b in zip(waypoints, waypoints[1:]):
            hops.extend(xy_route(a, b))
        return hops

    @property
    def hops(self) -> int:
        waypoints = (self.src,) + self.via + (self.dst,)
        return sum(route_length(a, b) for a, b in zip(waypoints, waypoints[1:]))


@dataclass
class Wave:
    """A set of transfers whose routes never collide hop-by-hop."""

    transfers: List[Transfer] = field(default_factory=list)
    _links_by_step: List[Set[Tuple[TileCoordinate, object, str]]] = field(
        default_factory=list
    )

    @staticmethod
    def _resources(transfer: Transfer, route: List[Hop]):
        """Per-step resources a transfer occupies.

        Each hop occupies its directed link; injection occupies the source
        router's single injection path in the first cycle; the final delivery
        occupies the destination router's ejection/adder port one step later.
        This guarantees that no router has to inject or consume two packets of
        the same NoC in one cycle.
        """
        yield 0, (transfer.src, "INJECT", transfer.net)
        for step, hop in enumerate(route):
            yield step, (hop.tile, hop.direction, transfer.net)
        yield len(route), (transfer.dst, "LOCAL", transfer.net)
        # multicast chains also occupy the ejection path of every
        # intermediate delivery tile in the step whose BYPASS ejects there
        for hop_index, _ in transfer.payload.get("ejects", ()):
            yield hop_index, (route[hop_index].tile, "LOCAL", transfer.net)

    def can_accept(self, transfer: Transfer, route: List[Hop]) -> bool:
        for step, key in self._resources(transfer, route):
            if step < len(self._links_by_step) and key in self._links_by_step[step]:
                return False
        return True

    def add(self, transfer: Transfer, route: List[Hop]) -> None:
        for step, key in self._resources(transfer, route):
            while step >= len(self._links_by_step):
                self._links_by_step.append(set())
            self._links_by_step[step].add(key)
        self.transfers.append(transfer)

    @property
    def depth(self) -> int:
        """Longest route in the wave, in hops (including the delivery step)."""
        return len(self._links_by_step)

    def __len__(self) -> int:
        return len(self.transfers)


def pack_waves(transfers: Sequence[Transfer]) -> List[Wave]:
    """Pack transfers into conflict-free waves (greedy, first-fit).

    Within one wave, all transfers start in the same cycle; transfer ``t``'s
    hop ``i`` happens in the wave's cycle ``i``.  Two transfers of the same
    NoC conflict if any of their hops would drive the same directed link in
    the same cycle.  First-fit into the earliest non-conflicting wave keeps
    the schedule short without needing an optimal (NP-hard) packing.
    """
    waves: List[Wave] = []
    for transfer in transfers:
        route = transfer.route
        placed = False
        for wave in waves:
            if wave.can_accept(transfer, route):
                wave.add(transfer, route)
                placed = True
                break
        if not placed:
            wave = Wave()
            wave.add(transfer, route)
            waves.append(wave)
    return waves


def serial_waves(transfers: Sequence[Transfer]) -> List[Wave]:
    """One transfer per wave — the fully serialised (reference) schedule."""
    waves = []
    for transfer in transfers:
        wave = Wave()
        wave.add(transfer, transfer.route)
        waves.append(wave)
    return waves


def total_hop_count(transfers: Sequence[Transfer]) -> int:
    """Total number of link traversals of a set of transfers."""
    return sum(transfer.hops for transfer in transfers)


def verify_waves(waves: Sequence[Wave]) -> None:
    """Independently re-check that every wave is conflict-free.

    Recomputes each transfer's per-step resource usage (directed links,
    injection and delivery ports) from scratch — without trusting the
    bookkeeping :class:`Wave` maintained while packing — and raises
    :class:`MappingError` on any double booking.  Used by the pass
    pipeline's invariant checks.
    """
    for wave_index, wave in enumerate(waves):
        used: Dict[int, Set[Tuple[TileCoordinate, object, str]]] = {}
        for transfer in wave.transfers:
            for step, key in Wave._resources(transfer, transfer.route):
                step_set = used.setdefault(step, set())
                if key in step_set:
                    raise MappingError(
                        f"wave {wave_index}: resource {key} used twice in "
                        f"step {step} (routing conflict)"
                    )
                step_set.add(key)
