"""Logical spike-NoC mapping: matching producers to consumers.

Once a layer is split over logical cores, every consumer core of the *next*
layer needs specific output elements of the producing layer on its axons.
Those elements live on specific (head core, lane) pairs of the producer.
This module computes, for each consumer core, the minimal set of
producer-to-consumer *delivery segments* — one spike packet per producing
head core, carrying exactly the lanes the consumer needs — and rearranges the
consumer's axons so that each segment lands on a contiguous block of axons in
lane order (which is how the spike router ejects a packet into the core).

This realises the paper's "logical spike NoC mapping": output sizes naturally
fit input sizes (one segment per producer core for fully connected layers),
and when a layer's cores are small, several producers' outputs are packed
onto non-overlapping axon ranges of the same consumer core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .logical import LogicalCore, MappingError


@dataclass
class DeliverySegment:
    """One spike packet from a producing head core to a consumer core."""

    producer_core: int
    lanes: np.ndarray
    axon_offset: int
    consumer_core: int

    def __post_init__(self) -> None:
        self.lanes = np.asarray(self.lanes, dtype=np.int64).ravel()
        if self.lanes.size == 0:
            raise MappingError("delivery segment must carry at least one lane")
        if self.axon_offset < 0:
            raise MappingError("axon offset must be non-negative")
        if np.any(np.diff(self.lanes) <= 0):
            raise MappingError("delivery segment lanes must be strictly increasing")

    @property
    def width(self) -> int:
        return int(self.lanes.size)


def canonicalise_axons(consumer: LogicalCore,
                       locator: Dict[int, Tuple[int, int]]) -> List[DeliverySegment]:
    """Reorder a consumer core's axons and compute its delivery segments.

    ``locator`` maps every global output element of the consumer's source
    layer to the ``(head core index, lane)`` that produces it.  After this
    call the consumer's axons are sorted by ``(producer core, lane)`` (the
    weight rows are permuted identically, so the computation is unchanged)
    and each producer contributes one contiguous, lane-ascending axon block —
    exactly what a single ejected spike packet fills.
    """
    try:
        keys = [locator[int(element)] for element in consumer.axon_sources]
    except KeyError as exc:
        raise MappingError(
            f"core {consumer.index} of {consumer.layer} reads output element "
            f"{exc.args[0]} which its source layer does not produce"
        ) from exc
    order = np.array(
        sorted(range(len(keys)), key=lambda position: keys[position]),
        dtype=np.int64,
    )
    consumer.reorder_axons(order)
    sorted_keys = [keys[int(position)] for position in order]

    segments: List[DeliverySegment] = []
    start = 0
    while start < len(sorted_keys):
        producer = sorted_keys[start][0]
        stop = start
        while stop < len(sorted_keys) and sorted_keys[stop][0] == producer:
            stop += 1
        lanes = np.array([sorted_keys[i][1] for i in range(start, stop)], dtype=np.int64)
        if np.unique(lanes).size != lanes.size:
            raise MappingError(
                f"core {consumer.index} of {consumer.layer} requests the same "
                f"producer lane twice from core {producer}"
            )
        segments.append(DeliverySegment(
            producer_core=producer,
            lanes=lanes,
            axon_offset=start,
            consumer_core=consumer.index,
        ))
        start = stop
    return segments


def segments_summary(segments: List[DeliverySegment]) -> Dict[str, int]:
    """Aggregate statistics over a set of delivery segments."""
    return {
        "segments": len(segments),
        "spike_lanes": int(sum(segment.width for segment in segments)),
        "producers": len({segment.producer_core for segment in segments}),
    }
