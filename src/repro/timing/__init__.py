"""``repro.timing`` — schedule-aware analytic cycle model.

The paper's Table IV cycle counts are the headline reproduction target.
This package prices a *compiled* mapping from the schedule it will actually
execute — the packed waves of the route plan and the emitted program —
instead of per-layer closed-form heuristics, so estimates track whatever
the :mod:`repro.opt` NoC passes did to the schedule (multicast chains,
reduction trees, congestion-aware placement):

* each delivery or reduction wave costs its depth (longest route in hops,
  via-waypoint multicast segments included, plus the delivery step);
* each layer's ``ACC`` phase costs ``arch.long_op_cycles`` and its fire
  phase one cycle (:mod:`repro.mapping.program` group latencies);
* reduction cost follows the emitted round shape — O(log k) tree rounds
  under ``reduction-tree``, the serial O(k) member chain otherwise.

These are exactly the rules program emission and the simulator follow, so
the wave-derived estimate equals the simulator's
``ExecutionStats.cycles / (frames * timesteps)`` — the parity suite in
``tests/test_estimator_parity.py`` pins this for every benchmark builder
under both the default and NoC-optimized pipelines, and ``python -m
repro.bench --check`` gates the relative error against a committed
tolerance.  See ``docs/timing.md`` for the formulas and the measured
estimate-vs-simulated table.

Usage
-----
::

    from repro.ir import compile
    from repro.timing import time_compiled, time_route_plan, time_program

    compiled = compile(network, arch)          # pipeline ends in the
    print(compiled.timing.describe())          # 'timing-model' pass

    timing = time_route_plan(compiled.routes, arch)   # price a plan directly
    timing = time_program(compiled.program)           # or the emitted program
    timing.cycles_per_timestep                        # scalar estimate
    timing.per_layer()                                # {layer: cycles}

    # estimator integration: schedule-aware cycles in MappingEstimate
    from repro.mapping import estimate_mapping
    estimate = estimate_mapping(network, arch, logical=compiled.logical,
                                placement=compiled.placement,
                                routes=compiled.routes)

    # command line: per-layer breakdown, default vs optimized pipeline
    #   python -m repro.timing mnist-inception-small
    #   python -m repro.timing --timesteps 8 --optimized cifar-strided-small
"""

from .model import (
    LayerTiming,
    TimingEstimate,
    WaveTiming,
    relative_error,
    serialization_lower_bound,
    time_compiled,
    time_program,
    time_route_plan,
    time_wave,
    wave_cycles,
)

__all__ = [
    "LayerTiming",
    "TimingEstimate",
    "WaveTiming",
    "relative_error",
    "serialization_lower_bound",
    "time_compiled",
    "time_program",
    "time_route_plan",
    "time_wave",
    "wave_cycles",
]
