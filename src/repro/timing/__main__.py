"""Command-line entry point: ``python -m repro.timing <network>``.

Converts a benchmark builder (random weights, seeded), compiles it through
the default — and, with ``--optimized``, the NoC-optimized — pipeline and
prints the per-layer cycle breakdown of the analytic timing model, so a
schedule change's cycle impact can be inspected without running anything.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    from ..apps.networks import ALL_BUILDERS

    parser = argparse.ArgumentParser(
        prog="python -m repro.timing",
        description="Per-layer analytic cycle breakdown of a compiled "
                    "benchmark network (see repro.timing).",
        epilog="example: python -m repro.timing --optimized "
               "mnist-inception-small",
    )
    parser.add_argument("network", choices=sorted(ALL_BUILDERS),
                        help="benchmark builder to compile")
    parser.add_argument("--timesteps", type=int, default=4,
                        help="SNN timesteps per frame (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="weight/calibration seed (default 0)")
    parser.add_argument("--optimized", action="store_true",
                        help="also compile with the repro.opt NoC passes "
                             "and print both breakdowns")
    args = parser.parse_args(argv)

    from ..bench import seeded_benchmark_graph
    from ..core.config import DEFAULT_ARCH
    from ..ir.pipeline import compile as ir_compile

    graph, _ = seeded_benchmark_graph(args.network, args.timesteps,
                                      seed=args.seed)

    pipelines = [("default", False)]
    if args.optimized:
        pipelines.append(("optimized", True))
    totals = {}
    for label, optimize in pipelines:
        compiled = ir_compile(graph, DEFAULT_ARCH, optimize_noc=optimize)
        timing = compiled.timing
        totals[label] = timing.cycles_per_timestep
        print(f"--- {label} pipeline ---")
        print(timing.describe())
        print(f"cycles/frame ({args.timesteps} timesteps): "
              f"{timing.cycles_per_frame}")
    if len(totals) == 2 and totals["default"]:
        cut = 1 - totals["optimized"] / totals["default"]
        print(f"\noptimized vs default: {totals['default']} -> "
              f"{totals['optimized']} cycles/timestep ({cut:.1%} lower)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
