"""The analytic timing model: pricing compiled schedules wave by wave.

Every quantity here mirrors a rule of the execution model exactly:

* a packed :class:`~repro.mapping.routing.Wave` of depth ``d`` (longest
  route in hops — via-waypoint multicast segments included — plus the
  delivery step) is emitted as ``d`` instruction groups of single-cycle
  router operations, so it costs ``d`` cycles;
* a layer's ``accumulate`` phase is one group of ``ACC`` operations and
  costs :attr:`~repro.core.config.ArchitectureConfig.long_op_cycles`;
* a layer's ``fire`` phase is one group of ``SPIKE`` operations and costs
  one cycle;
* reduction rounds cost the sum of their waves' depths — O(log k) rounds
  under the ``reduction-tree`` pass, the serial O(k) member chain
  otherwise; the shape is read off the emitted schedule, not assumed.

Because the simulator charges each instruction group the latency of its
slowest operation and nothing else (no stalls — conflict-freedom is a
compile-time invariant), the wave-derived estimate equals
:meth:`~repro.mapping.program.Program.cycles_per_timestep` and the
simulator's :class:`~repro.core.stats.ExecutionStats.cycles` exactly.  The
``timing-model`` pipeline pass re-checks that equality as its invariant.

For traffic that has *not* been packed into waves yet the model offers
:func:`serialization_lower_bound` — the classical congestion/dilation bound
``max(most-loaded link, longest route) + 1`` over a transfer set, computed
from the same per-link loads as :func:`repro.opt.cost.link_congestion`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.config import ArchitectureConfig
from ..mapping.program import Program
from ..mapping.routing import Transfer, Wave


@dataclass(frozen=True)
class WaveTiming:
    """Cycle cost of one packed wave."""

    #: packets injected by the wave
    transfers: int
    #: total link traversals of the wave
    hops: int
    #: schedule depth: longest route (in hops) plus the delivery step
    cycles: int


@dataclass
class LayerTiming:
    """Per-timestep cycle breakdown of one logical layer."""

    name: str
    #: one entry per spike-delivery wave
    delivery: List[WaveTiming] = field(default_factory=list)
    #: one entry per reduction round, each a list of parallel waves
    reduction: List[List[WaveTiming]] = field(default_factory=list)
    #: the ACC phase (``long_op_cycles``)
    accumulate_cycles: int = 0
    #: the SPIKE phase (one group)
    fire_cycles: int = 1

    @property
    def delivery_cycles(self) -> int:
        return sum(wave.cycles for wave in self.delivery)

    @property
    def reduction_cycles(self) -> int:
        return sum(wave.cycles for round_waves in self.reduction
                   for wave in round_waves)

    @property
    def reduction_rounds(self) -> int:
        return len(self.reduction)

    @property
    def cycles(self) -> int:
        return (self.delivery_cycles + self.accumulate_cycles
                + self.reduction_cycles + self.fire_cycles)


@dataclass
class TimingEstimate:
    """Analytic per-timestep cycle estimate of one compiled mapping."""

    name: str
    layers: List[LayerTiming]
    long_op_cycles: int
    #: timesteps per frame (``None`` when the network does not declare one)
    timesteps: Optional[int] = None
    #: how the estimate was derived: ``"waves"`` (packed route plan) or
    #: ``"program"`` (emitted instruction groups)
    source: str = "waves"

    @property
    def cycles_per_timestep(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def cycles_per_frame(self) -> int:
        if self.timesteps is None:
            raise ValueError(
                f"timing estimate {self.name!r} has no timestep count; use "
                "cycles_for(frames, timesteps)"
            )
        return self.cycles_per_timestep * self.timesteps

    def cycles_for(self, frames: int, timesteps: Optional[int] = None) -> int:
        """Total cycles of a run of ``frames`` frames."""
        steps = timesteps if timesteps is not None else self.timesteps
        if steps is None:
            raise ValueError("timesteps required (network declares none)")
        return self.cycles_per_timestep * steps * frames

    def per_layer(self) -> Dict[str, int]:
        return {layer.name: layer.cycles for layer in self.layers}

    def as_dict(self) -> Dict[str, object]:
        return {
            "cycles_per_timestep": self.cycles_per_timestep,
            "timesteps": self.timesteps,
            "source": self.source,
            "layers": {
                layer.name: {
                    "delivery": layer.delivery_cycles,
                    "accumulate": layer.accumulate_cycles,
                    "reduction": layer.reduction_cycles,
                    "reduction_rounds": layer.reduction_rounds,
                    "fire": layer.fire_cycles,
                    "total": layer.cycles,
                }
                for layer in self.layers
            },
        }

    def describe(self) -> str:
        lines = [
            f"TimingEstimate '{self.name}' ({self.source}): "
            f"{self.cycles_per_timestep} cycles/timestep"
        ]
        for layer in self.layers:
            lines.append(
                f"  {layer.name:<24} deliver {layer.delivery_cycles:>6}  "
                f"acc {layer.accumulate_cycles:>4}  "
                f"reduce {layer.reduction_cycles:>6} "
                f"({layer.reduction_rounds} rounds)  "
                f"fire {layer.fire_cycles}  = {layer.cycles}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Pricing primitives
# ----------------------------------------------------------------------
def wave_cycles(wave: Wave) -> int:
    """Cycles one wave occupies: its longest route plus the delivery step.

    :attr:`Transfer.hops` counts every XY segment through the ``via``
    waypoints of a multicast chain, so eject-and-forward chains are priced
    at their full length (one injection, each link once).
    """
    if not wave.transfers:
        return 0
    return max(transfer.hops for transfer in wave.transfers) + 1


def time_wave(wave: Wave) -> WaveTiming:
    """Full :class:`WaveTiming` of one packed wave."""
    return WaveTiming(
        transfers=len(wave.transfers),
        hops=sum(transfer.hops for transfer in wave.transfers),
        cycles=wave_cycles(wave),
    )


def serialization_lower_bound(transfers: Iterable[Transfer]) -> int:
    """Congestion/dilation lower bound on scheduling a transfer set.

    ``max(most-loaded directed link, longest route) + 1``: no conflict-free
    schedule can move the set faster, since every packet needs its route's
    length plus a delivery step and every link moves one packet per cycle.
    The per-link loads come from :func:`repro.opt.cost.link_congestion` —
    one accounting of link occupancy shared with the NoC cost model; this
    is the pre-packing bound the closed-form estimator path applies.
    """
    from ..opt.cost import link_congestion

    transfers = list(transfers)
    if not transfers:
        return 0
    longest = max(transfer.hops for transfer in transfers)
    loads = link_congestion(transfers)
    congestion = max(loads.values()) if loads else 0
    return max(congestion, longest) + 1


# ----------------------------------------------------------------------
# Whole-plan / whole-program pricing
# ----------------------------------------------------------------------
def time_route_plan(routes, arch: ArchitectureConfig, name: str = "",
                    timesteps: Optional[int] = None) -> TimingEstimate:
    """Price a packed :class:`~repro.ir.pipeline.RoutePlan` layer by layer.

    Exact for the emitted program: delivery and reduction waves cost their
    depth, the ACC phase costs ``arch.long_op_cycles`` and the fire phase
    one cycle — the same rules program emission follows.
    """
    layers: List[LayerTiming] = []
    for layer_routes in routes.layers:
        timing = LayerTiming(
            name=layer_routes.layer,
            delivery=[time_wave(wave) for wave in layer_routes.delivery_waves],
            reduction=[[time_wave(wave) for wave in round_waves]
                       for round_waves in layer_routes.reduction_rounds],
            accumulate_cycles=arch.long_op_cycles,
            fire_cycles=1,
        )
        layers.append(timing)
    return TimingEstimate(name=name, layers=layers,
                          long_op_cycles=arch.long_op_cycles,
                          timesteps=timesteps, source="waves")


def time_program(program: Program,
                 timesteps: Optional[int] = None) -> TimingEstimate:
    """Price an emitted :class:`Program` from its instruction groups.

    Sums :meth:`InstructionGroup.latency` per phase — by definition equal
    to :meth:`Program.cycles_per_timestep` — and attributes each phase to
    its layer via the ``layer/stage`` phase naming convention.  Useful when
    only the program survives (no route plan), and as the cross-check the
    ``timing-model`` pass invariant runs against the wave-derived estimate.
    """
    long_op = program.arch.long_op_cycles
    if timesteps is None:
        declared = program.metadata.get("timesteps")
        timesteps = int(declared) if declared is not None else None
    by_layer: Dict[str, LayerTiming] = {}
    order: List[str] = []
    for phase in program.phases:
        layer_name, _, stage = phase.name.partition("/")
        if layer_name not in by_layer:
            by_layer[layer_name] = LayerTiming(name=layer_name,
                                               accumulate_cycles=0,
                                               fire_cycles=0)
            order.append(layer_name)
        timing = by_layer[layer_name]
        phase_cycles = sum(group.latency(long_op) for group in phase.groups)
        if stage == "accumulate":
            timing.accumulate_cycles += phase_cycles
        elif stage == "fire":
            timing.fire_cycles += phase_cycles
        elif stage == "ps-reduce":
            timing.reduction.append([WaveTiming(
                transfers=phase.instruction_count, hops=0,
                cycles=phase_cycles)])
        else:  # deliver (and any future NoC stage)
            timing.delivery.append(WaveTiming(
                transfers=phase.instruction_count, hops=0,
                cycles=phase_cycles))
    name = str(program.metadata.get("name", "") or "")
    return TimingEstimate(name=name, layers=[by_layer[key] for key in order],
                          long_op_cycles=long_op, timesteps=timesteps,
                          source="program")


def time_compiled(compiled, arch: Optional[ArchitectureConfig] = None,
                  timesteps: Optional[int] = None) -> TimingEstimate:
    """Price a :class:`~repro.mapping.compiler.CompiledNetwork`.

    Returns the estimate the ``timing-model`` pass cached on the compile —
    unless the caller overrides ``arch`` or ``timesteps``, in which case
    the plan is re-priced under those (the cached estimate was produced
    with the compile-time architecture).  Prefers the packed route plan
    (per-wave breakdown with hop counts); falls back to the emitted
    program when no plan was kept.
    """
    if getattr(compiled, "timing", None) is not None \
            and arch is None and timesteps is None:
        return compiled.timing
    if compiled.routes is not None:
        if arch is None and compiled.program is not None:
            arch = compiled.program.arch
        if arch is None:
            raise ValueError("arch required to price a route plan without "
                             "an emitted program")
        if timesteps is None:
            timesteps = compiled.logical.metadata.get("timesteps") \
                if compiled.logical is not None else None
        return time_route_plan(compiled.routes, arch,
                               name=compiled.name, timesteps=timesteps)
    if compiled.program is not None:
        return time_program(compiled.program, timesteps=timesteps)
    raise ValueError(
        "compiled network carries neither a route plan nor a program; run "
        "the pipeline at least through 'route-pack'"
    )


def relative_error(estimated: float, measured: float) -> float:
    """``|estimated - measured| / measured`` (0 when both are zero)."""
    if measured == 0:
        return 0.0 if estimated == 0 else float("inf")
    return abs(estimated - measured) / abs(measured)
