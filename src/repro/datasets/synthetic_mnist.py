"""Synthetic MNIST substitute.

The paper evaluates on MNIST (28 x 28 grayscale digits, 10 classes).  The
original dataset is not available offline, so this module procedurally
generates a drop-in substitute with the same tensor shapes and the same
learnability profile: ten stroke-based digit prototypes rendered onto a
28 x 28 canvas, randomly translated, thickness-jittered and corrupted with
noise.  An MLP of the paper's size (784-512-10) reaches well above 90 %
accuracy on it, which is what the relative-accuracy experiments need.

The substitution is documented in DESIGN.md ("Substitutions").
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .base import Dataset

IMAGE_SIDE = 28

# Stroke descriptions of the ten digit prototypes on a 7-segment-like grid.
# Each stroke is a line segment ((row0, col0), (row1, col1)) in a 28x28 frame.
_Stroke = Tuple[Tuple[int, int], Tuple[int, int]]

_DIGIT_STROKES: Dict[int, List[_Stroke]] = {
    0: [((5, 8), (5, 19)), ((22, 8), (22, 19)), ((5, 8), (22, 8)), ((5, 19), (22, 19))],
    1: [((5, 14), (22, 14)), ((5, 14), (9, 10))],
    2: [((5, 8), (5, 19)), ((5, 19), (13, 19)), ((13, 8), (13, 19)),
        ((13, 8), (22, 8)), ((22, 8), (22, 19))],
    3: [((5, 8), (5, 19)), ((13, 10), (13, 19)), ((22, 8), (22, 19)),
        ((5, 19), (22, 19))],
    4: [((5, 8), (13, 8)), ((13, 8), (13, 19)), ((5, 19), (22, 19))],
    5: [((5, 8), (5, 19)), ((5, 8), (13, 8)), ((13, 8), (13, 19)),
        ((13, 19), (22, 19)), ((22, 8), (22, 19))],
    6: [((5, 8), (5, 19)), ((5, 8), (22, 8)), ((13, 8), (13, 19)),
        ((13, 19), (22, 19)), ((22, 8), (22, 19))],
    7: [((5, 8), (5, 19)), ((5, 19), (22, 12))],
    8: [((5, 8), (5, 19)), ((13, 8), (13, 19)), ((22, 8), (22, 19)),
        ((5, 8), (22, 8)), ((5, 19), (22, 19))],
    9: [((5, 8), (5, 19)), ((5, 8), (13, 8)), ((13, 8), (13, 19)),
        ((5, 19), (22, 19)), ((22, 8), (22, 19))],
}


def _draw_stroke(canvas: np.ndarray, stroke: _Stroke, thickness: float) -> None:
    """Rasterise one line segment with a soft (gaussian-falloff) profile."""
    (r0, c0), (r1, c1) = stroke
    length = max(abs(r1 - r0), abs(c1 - c0), 1)
    steps = np.linspace(0.0, 1.0, 2 * length + 1)
    rows = r0 + (r1 - r0) * steps
    cols = c0 + (c1 - c0) * steps
    grid_r, grid_c = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
    for row, col in zip(rows, cols):
        dist_sq = (grid_r - row) ** 2 + (grid_c - col) ** 2
        canvas += np.exp(-dist_sq / (2.0 * thickness ** 2))


def render_digit(digit: int, rng: np.random.Generator) -> np.ndarray:
    """Render one randomly perturbed instance of ``digit``."""
    if digit not in _DIGIT_STROKES:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    canvas = np.zeros((IMAGE_SIDE, IMAGE_SIDE), dtype=np.float64)
    thickness = rng.uniform(0.9, 1.5)
    for stroke in _DIGIT_STROKES[digit]:
        _draw_stroke(canvas, stroke, thickness)
    canvas = np.clip(canvas, 0.0, 1.0)
    # Random translation of up to 3 pixels in each direction.
    shift_r = rng.integers(-3, 4)
    shift_c = rng.integers(-3, 4)
    canvas = np.roll(canvas, (shift_r, shift_c), axis=(0, 1))
    # Intensity jitter and additive noise.
    canvas *= rng.uniform(0.75, 1.0)
    canvas += rng.normal(0.0, 0.05, size=canvas.shape)
    return np.clip(canvas, 0.0, 1.0)


def _generate_split(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    images = np.zeros((count, IMAGE_SIDE, IMAGE_SIDE, 1), dtype=np.float64)
    labels = rng.integers(0, 10, size=count)
    for index in range(count):
        images[index, :, :, 0] = render_digit(int(labels[index]), rng)
    return images, labels


def synthetic_mnist(train_size: int = 2000, test_size: int = 500,
                    seed: int = 0) -> Dataset:
    """Generate the synthetic MNIST substitute.

    Parameters mirror the real dataset's role in the paper: 28 x 28 x 1
    images in [0, 1], 10 balanced classes.  Both splits are generated from
    independent random streams derived from ``seed`` so the test set is not
    seen during training.
    """
    if train_size <= 0 or test_size <= 0:
        raise ValueError("split sizes must be positive")
    train_rng = np.random.default_rng(seed)
    test_rng = np.random.default_rng(seed + 10_000)
    train_images, train_labels = _generate_split(train_size, train_rng)
    test_images, test_labels = _generate_split(test_size, test_rng)
    return Dataset(
        name="synthetic-mnist",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        num_classes=10,
    )
