"""Synthetic dataset substitutes for MNIST and CIFAR-10 (see DESIGN.md)."""

from .base import Dataset, DatasetError
from .synthetic_cifar import synthetic_cifar10
from .synthetic_mnist import synthetic_mnist

__all__ = ["Dataset", "DatasetError", "synthetic_cifar10", "synthetic_mnist"]
