"""Dataset container shared by the synthetic dataset generators."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class DatasetError(ValueError):
    """Raised on inconsistent dataset construction."""


@dataclass
class Dataset:
    """A labelled image dataset with a train and a test split.

    Images are float arrays in ``[0, 1]`` with NHWC layout; labels are
    integer class indices.
    """

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        self.train_images = np.asarray(self.train_images, dtype=np.float64)
        self.test_images = np.asarray(self.test_images, dtype=np.float64)
        self.train_labels = np.asarray(self.train_labels, dtype=np.int64).ravel()
        self.test_labels = np.asarray(self.test_labels, dtype=np.int64).ravel()
        if self.train_images.shape[0] != self.train_labels.shape[0]:
            raise DatasetError("train image/label counts differ")
        if self.test_images.shape[0] != self.test_labels.shape[0]:
            raise DatasetError("test image/label counts differ")
        if self.train_images.ndim != 4 or self.test_images.ndim != 4:
            raise DatasetError("images must be NHWC arrays")
        if self.train_images.shape[1:] != self.test_images.shape[1:]:
            raise DatasetError("train and test image shapes differ")
        for split in (self.train_images, self.test_images):
            if split.size and (split.min() < 0.0 or split.max() > 1.0):
                raise DatasetError("image intensities must lie in [0, 1]")
        for labels in (self.train_labels, self.test_labels):
            if labels.size and (labels.min() < 0 or labels.max() >= self.num_classes):
                raise DatasetError("labels out of range")

    @property
    def image_shape(self) -> tuple[int, int, int]:
        return tuple(int(v) for v in self.train_images.shape[1:])  # type: ignore[return-value]

    @property
    def train_size(self) -> int:
        return int(self.train_images.shape[0])

    @property
    def test_size(self) -> int:
        return int(self.test_images.shape[0])

    def flat_train(self) -> np.ndarray:
        """Training images flattened to ``(N, H*W*C)`` (C-order)."""
        return self.train_images.reshape(self.train_size, -1)

    def flat_test(self) -> np.ndarray:
        return self.test_images.reshape(self.test_size, -1)

    def subset(self, train: int | None = None, test: int | None = None) -> "Dataset":
        """A smaller view of the dataset (used by fast tests)."""
        train = self.train_size if train is None else min(train, self.train_size)
        test = self.test_size if test is None else min(test, self.test_size)
        return Dataset(
            name=f"{self.name}-subset",
            train_images=self.train_images[:train],
            train_labels=self.train_labels[:train],
            test_images=self.test_images[:test],
            test_labels=self.test_labels[:test],
            num_classes=self.num_classes,
        )
