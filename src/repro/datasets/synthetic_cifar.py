"""Synthetic CIFAR-10 substitute.

The paper's CIFAR-10 benchmarks use 24 x 24 x 3 centre-cropped colour images
in 10 classes.  This module generates a procedural substitute with the same
tensor shape: each class is a distinct combination of a geometric shape
(disc, ring, square, cross, stripes) and a colour family, rendered on a
noisy background with random position, size and hue jitter.  A small CNN of
the paper's architecture separates the classes well, while leaving enough
intra-class variability to keep accuracy below 100 % — matching the role the
real CIFAR-10 plays in the evaluation (a harder task than MNIST).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import Dataset

IMAGE_SIDE = 24

#: (shape, base RGB colour) per class.
_CLASS_DEFINITIONS: Tuple[Tuple[str, Tuple[float, float, float]], ...] = (
    ("disc", (0.9, 0.2, 0.2)),
    ("disc", (0.2, 0.3, 0.9)),
    ("ring", (0.2, 0.8, 0.3)),
    ("ring", (0.9, 0.8, 0.2)),
    ("square", (0.8, 0.3, 0.8)),
    ("square", (0.2, 0.8, 0.8)),
    ("cross", (0.9, 0.5, 0.1)),
    ("cross", (0.5, 0.5, 0.9)),
    ("stripes", (0.7, 0.7, 0.7)),
    ("stripes", (0.4, 0.8, 0.4)),
)


def _shape_mask(shape: str, rng: np.random.Generator) -> np.ndarray:
    """Binary-ish mask of one randomly placed shape instance."""
    grid_r, grid_c = np.mgrid[0:IMAGE_SIDE, 0:IMAGE_SIDE]
    centre_r = rng.uniform(8, IMAGE_SIDE - 8)
    centre_c = rng.uniform(8, IMAGE_SIDE - 8)
    size = rng.uniform(4.5, 7.5)
    dist = np.sqrt((grid_r - centre_r) ** 2 + (grid_c - centre_c) ** 2)
    if shape == "disc":
        return (dist <= size).astype(np.float64)
    if shape == "ring":
        return ((dist <= size) & (dist >= size * 0.55)).astype(np.float64)
    if shape == "square":
        return (
            (np.abs(grid_r - centre_r) <= size * 0.8)
            & (np.abs(grid_c - centre_c) <= size * 0.8)
        ).astype(np.float64)
    if shape == "cross":
        bar = size * 0.35
        return (
            ((np.abs(grid_r - centre_r) <= bar) & (np.abs(grid_c - centre_c) <= size))
            | ((np.abs(grid_c - centre_c) <= bar) & (np.abs(grid_r - centre_r) <= size))
        ).astype(np.float64)
    if shape == "stripes":
        period = rng.uniform(3.0, 5.0)
        phase = rng.uniform(0, period)
        stripes = ((grid_r + phase) % period) < period / 2
        window = dist <= size * 1.3
        return (stripes & window).astype(np.float64)
    raise ValueError(f"unknown shape {shape!r}")


def render_class(label: int, rng: np.random.Generator) -> np.ndarray:
    """Render one image of class ``label``."""
    if not 0 <= label < len(_CLASS_DEFINITIONS):
        raise ValueError(f"label must be in 0..{len(_CLASS_DEFINITIONS) - 1}")
    shape, base_colour = _CLASS_DEFINITIONS[label]
    background = rng.uniform(0.05, 0.35, size=3)
    image = np.ones((IMAGE_SIDE, IMAGE_SIDE, 3), dtype=np.float64) * background
    image += rng.normal(0.0, 0.03, size=image.shape)
    mask = _shape_mask(shape, rng)
    colour = np.clip(np.asarray(base_colour) + rng.normal(0.0, 0.08, size=3), 0.0, 1.0)
    image = image * (1.0 - mask[..., None]) + mask[..., None] * colour
    image += rng.normal(0.0, 0.04, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def _generate_split(count: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    images = np.zeros((count, IMAGE_SIDE, IMAGE_SIDE, 3), dtype=np.float64)
    labels = rng.integers(0, 10, size=count)
    for index in range(count):
        images[index] = render_class(int(labels[index]), rng)
    return images, labels


def synthetic_cifar10(train_size: int = 2000, test_size: int = 500,
                      seed: int = 0) -> Dataset:
    """Generate the synthetic CIFAR-10 substitute (24 x 24 x 3, 10 classes)."""
    if train_size <= 0 or test_size <= 0:
        raise ValueError("split sizes must be positive")
    train_rng = np.random.default_rng(seed + 1)
    test_rng = np.random.default_rng(seed + 20_000)
    train_images, train_labels = _generate_split(train_size, train_rng)
    test_images, test_labels = _generate_split(test_size, test_rng)
    return Dataset(
        name="synthetic-cifar10",
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
        num_classes=10,
    )
