"""``repro.obs`` — observability: probes, telemetry, traces, metrics.

Four legs, one subsystem:

* **Runtime probes** (:mod:`repro.obs.probes`): a declarative
  :class:`ProbeSet` of per-layer observations — firing rates / spike
  counts per timestep, membrane-potential snapshots, ``ACC`` switching
  activity — honoured by *every* execution backend
  (``backend.run(trains, probes=...)``) with bit-identical
  :class:`ProbeResult`\\ s, and near-zero overhead when detached.
* **NoC telemetry** (:mod:`repro.obs.telemetry`): observed per-link
  spike/PS traffic and per-group wave occupancy, rendered as text
  heatmaps and checked against the cost model's *predicted* congestion
  (:func:`compare_link_traffic` vs
  :func:`repro.opt.cost.predicted_link_traffic`).
* **Unified traces** (:mod:`repro.obs.trace`): one :class:`Trace` from
  compile passes through execution timesteps, exportable as Chrome
  ``trace_event`` JSON and structured metrics.
* **Wall-clock metrics & profiling** (:mod:`repro.obs.metrics`,
  :mod:`repro.obs.profile`): a picklable, deterministically-mergeable
  :class:`MetricsRegistry` (counters, gauges, log-bucket histograms with
  p50/p95/p99) fed by span-based profiling of the compile pipeline, every
  backend's run phases, and the sharded worker lifecycle
  (``backend.run(trains, metrics=...)``), exported as OpenMetrics text
  (:func:`render_openmetrics`), JSON, and a real-time Chrome-trace track.

``python -m repro.obs <network>`` prints a full report; see
``docs/observability.md``.
"""

from .probes import (
    PROBE_KINDS,
    LayerProbePoint,
    ProbeError,
    ProbeResult,
    ProbeSet,
    ProbeSpec,
    ResolvedProbes,
    ScheduleProbeRun,
    SimulatorProbeCollector,
    probe_points,
)
from .telemetry import (
    LinkKey,
    NocTelemetry,
    compare_link_traffic,
    link_key_str,
    render_link_heatmap,
    schedule_telemetry,
)
from .trace import Trace, validate_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    SpanRecord,
    default_bounds,
    render_openmetrics,
    validate_openmetrics,
)
from .profile import (
    TIMESTEP_SAMPLE_LIMIT,
    Stopwatch,
    absorb_pass_records,
    absorb_resilience,
    span,
    stopwatch,
    time_block,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LayerProbePoint",
    "LinkKey",
    "MetricsError",
    "MetricsRegistry",
    "NocTelemetry",
    "PROBE_KINDS",
    "ProbeError",
    "ProbeResult",
    "ProbeSet",
    "ProbeSpec",
    "ResolvedProbes",
    "ScheduleProbeRun",
    "SimulatorProbeCollector",
    "SpanRecord",
    "Stopwatch",
    "TIMESTEP_SAMPLE_LIMIT",
    "Trace",
    "absorb_pass_records",
    "absorb_resilience",
    "compare_link_traffic",
    "default_bounds",
    "link_key_str",
    "probe_points",
    "render_link_heatmap",
    "render_openmetrics",
    "schedule_telemetry",
    "span",
    "stopwatch",
    "time_block",
    "validate_chrome_trace",
    "validate_openmetrics",
]
