"""``repro.obs`` — observability: probes, NoC telemetry, unified traces.

Three legs, one subsystem:

* **Runtime probes** (:mod:`repro.obs.probes`): a declarative
  :class:`ProbeSet` of per-layer observations — firing rates / spike
  counts per timestep, membrane-potential snapshots, ``ACC`` switching
  activity — honoured by *every* execution backend
  (``backend.run(trains, probes=...)``) with bit-identical
  :class:`ProbeResult`\\ s, and near-zero overhead when detached.
* **NoC telemetry** (:mod:`repro.obs.telemetry`): observed per-link
  spike/PS traffic and per-group wave occupancy, rendered as text
  heatmaps and checked against the cost model's *predicted* congestion
  (:func:`compare_link_traffic` vs
  :func:`repro.opt.cost.predicted_link_traffic`).
* **Unified traces** (:mod:`repro.obs.trace`): one :class:`Trace` from
  compile passes through execution timesteps, exportable as Chrome
  ``trace_event`` JSON and structured metrics.

``python -m repro.obs <network>`` prints a full report; see
``docs/observability.md``.
"""

from .probes import (
    PROBE_KINDS,
    LayerProbePoint,
    ProbeError,
    ProbeResult,
    ProbeSet,
    ProbeSpec,
    ResolvedProbes,
    ScheduleProbeRun,
    SimulatorProbeCollector,
    probe_points,
)
from .telemetry import (
    LinkKey,
    NocTelemetry,
    compare_link_traffic,
    link_key_str,
    render_link_heatmap,
    schedule_telemetry,
)
from .trace import Trace, validate_chrome_trace

__all__ = [
    "PROBE_KINDS",
    "LayerProbePoint",
    "LinkKey",
    "NocTelemetry",
    "ProbeError",
    "ProbeResult",
    "ProbeSet",
    "ProbeSpec",
    "ResolvedProbes",
    "ScheduleProbeRun",
    "SimulatorProbeCollector",
    "Trace",
    "compare_link_traffic",
    "link_key_str",
    "probe_points",
    "render_link_heatmap",
    "schedule_telemetry",
    "validate_chrome_trace",
]
