"""Wall-clock metrics: counters, gauges, log-bucket histograms, spans.

``repro.obs`` (PR 6) reproduced the paper's *model-time* observability —
cycle-priced traces, probes, NoC telemetry.  This module adds the
*real-time* axis: a picklable :class:`MetricsRegistry` that backends,
the compile pipeline, and the sharded worker lifecycle all write into,
with deterministic cross-process merging and OpenMetrics/JSON export.

Design contract (mirrors the probe hooks in ``execute_schedule``):

* **Disabled is free.**  A registry constructed with ``enabled=False``
  (and the ``metrics=None`` default everywhere) costs a single ``None``
  or attribute check per call site — hot loops stay hot.
* **Deterministic merge.**  :meth:`MetricsRegistry.absorb` is applied in
  shard-index order, exactly like ``ExecutionStats`` merging.  Counters
  add, gauges take the max, histograms add bucket counts.  Counters are
  reserved for *work counts* (frames, timesteps, ops) so their merged
  values are bit-identical regardless of worker count; wall-clock values
  live in histograms and spans.
* **Picklable snapshots.**  :meth:`MetricsRegistry.snapshot` returns a
  plain-data deep copy that crosses the ``ProcessPoolExecutor`` boundary
  alongside shard results.
"""
from __future__ import annotations

import bisect
import math
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "SpanRecord",
    "MetricsRegistry",
    "default_bounds",
    "render_openmetrics",
    "validate_openmetrics",
]


class MetricsError(ValueError):
    """Raised on invalid metric names, bounds, or merge mismatches."""


#: metric names are slash-separated paths, e.g. ``run/vectorized/setup``
_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_./-]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricsError(f"invalid metric name: {name!r}")
    return name


def default_bounds(start: float = 1e-6, growth: float = 2.0,
                   count: int = 30) -> List[float]:
    """Fixed log-spaced histogram bucket upper bounds, in seconds.

    The defaults span 1 microsecond to ``1e-6 * 2**29`` ~= 537 seconds,
    which covers every timestep/kernel/phase duration the engine
    produces while keeping bucket merges exact (bounds are identical on
    every process by construction).
    """
    if start <= 0 or growth <= 1 or count < 1:
        raise MetricsError("bounds need start > 0, growth > 1, count >= 1")
    return [start * growth ** i for i in range(count)]


#: the default bounds, computed once — histogram construction is on the
#: per-run instrumentation path, so it must not re-derive (or re-validate)
#: 30 floats every time
_DEFAULT_BOUNDS = default_bounds()


class Counter:
    """Monotonic float counter; merge adds."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters only go up")
        self.value += amount

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.value!r})"


class Gauge:
    """Last-written value; merge takes the max (associative, commutative)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)

    def __getstate__(self):
        return self.value

    def __setstate__(self, state):
        self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.value!r})"


class Histogram:
    """Fixed-bucket histogram with p50/p95/p99 estimates.

    ``bounds`` are inclusive upper bounds; ``counts`` has one extra
    slot for the +Inf overflow bucket.  Two histograms merge only when
    their bounds are identical, which the registry guarantees by always
    building them from the same ``bounds`` argument.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "minimum", "maximum")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        if bounds is None:
            bounds = _DEFAULT_BOUNDS.copy()
        else:
            bounds = [float(b) for b in bounds]
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise MetricsError(
                    "histogram bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise MetricsError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in-bucket."""
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            lower = self.bounds[i - 1] if i > 0 else 0.0
            upper = self.bounds[i] if i < len(self.bounds) else self.maximum
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                fraction = (target - previous) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum  # pragma: no cover - cumulative == count above

    def percentiles(self) -> Dict[str, float]:
        return {"p50": self.quantile(0.50),
                "p95": self.quantile(0.95),
                "p99": self.quantile(0.99)}

    def as_dict(self) -> Dict[str, float]:
        out: Dict[str, float] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
        out.update(self.percentiles())
        return out

    def __getstate__(self):
        return (self.bounds, self.counts, self.count, self.sum,
                self.minimum, self.maximum)

    def __setstate__(self, state):
        (self.bounds, self.counts, self.count, self.sum,
         self.minimum, self.maximum) = state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


class _NullMetric:
    """Shared no-op stand-in returned by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


@dataclass
class SpanRecord:
    """One timed region: ``start`` is seconds since the registry epoch."""

    name: str
    start: float
    seconds: float
    track: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"name": self.name, "start": self.start,
                "seconds": self.seconds, "track": self.track}


@dataclass
class MetricsRegistry:
    """Named counters/gauges/histograms plus an ordered span log.

    A disabled registry (``enabled=False``) hands out a shared null
    metric and drops spans, so instrumented code needs no branches
    beyond the ones it already has for ``metrics=None``.
    """

    enabled: bool = True
    span_limit: int = 1024
    counters: Dict[str, Counter] = field(default_factory=dict)
    gauges: Dict[str, Gauge] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    spans: List[SpanRecord] = field(default_factory=list)

    # -- accessors ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self.counters.get(name)
        if metric is None:
            self._claim(name)
            metric = self.counters[_check_name(name)] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self.gauges.get(name)
        if metric is None:
            self._claim(name)
            metric = self.gauges[_check_name(name)] = Gauge()
        return metric

    def histogram(self, name: str,
                  bounds: Optional[Sequence[float]] = None) -> Histogram:
        if not self.enabled:
            return _NULL_METRIC  # type: ignore[return-value]
        metric = self.histograms.get(name)
        if metric is None:
            self._claim(name)
            metric = self.histograms[_check_name(name)] = Histogram(bounds)
        return metric

    def _claim(self, name: str) -> None:
        for kind, table in (("counter", self.counters),
                            ("gauge", self.gauges),
                            ("histogram", self.histograms)):
            if name in table:
                raise MetricsError(
                    f"metric {name!r} already registered as a {kind}")

    # -- spans ----------------------------------------------------------
    def record_span(self, name: str, seconds: float, track: str = "",
                    start: Optional[float] = None) -> None:
        """Record a completed timed region and feed its histogram.

        ``start`` is an offset in seconds on this registry's timeline;
        when omitted the span is laid immediately after the previous
        span on the same track (or at 0), which keeps trace rendering
        deterministic without reading any clock here.
        """
        if not self.enabled:
            return
        seconds = float(seconds)
        if start is None:
            start = 0.0
            for span in reversed(self.spans):
                if span.track == track:
                    start = span.start + span.seconds
                    break
        if len(self.spans) < self.span_limit:
            self.spans.append(SpanRecord(name, max(float(start), 0.0),
                                         seconds, track))
        self.histogram(name).observe(seconds)

    # -- aggregation ----------------------------------------------------
    def snapshot(self) -> "MetricsRegistry":
        """Plain-data deep copy, safe to pickle across process boundaries."""
        copy = MetricsRegistry(enabled=self.enabled,
                               span_limit=self.span_limit)
        for name, c in self.counters.items():
            copy.counters[name] = Counter(c.value)
        for name, g in self.gauges.items():
            copy.gauges[name] = Gauge(g.value)
        for name, h in self.histograms.items():
            twin = Histogram(h.bounds)
            twin.merge(h)
            copy.histograms[name] = twin
        copy.spans = [SpanRecord(s.name, s.start, s.seconds, s.track)
                      for s in self.spans]
        return copy

    def absorb(self, other: "MetricsRegistry", track: str = "") -> None:
        """Merge ``other`` into self; optionally re-tag its span tracks.

        Called in shard-index order by the sharded backend so the merged
        registry is deterministic for a given shard decomposition.
        """
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            gauge = self.gauge(name)
            gauge.set(max(gauge.value, g.value))
        for name, h in other.histograms.items():
            self.histogram(name, h.bounds).merge(h)
        for span in other.spans:
            if track:
                sub = f"{track}/{span.track}" if span.track else track
            else:
                sub = span.track
            if len(self.spans) < self.span_limit:
                self.spans.append(
                    SpanRecord(span.name, span.start, span.seconds, sub))

    @classmethod
    def merge(cls, parts: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        merged = cls()
        for part in parts:
            merged.absorb(part)
        return merged

    # -- export ---------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        return {
            "counters": {name: self.counters[name].value
                         for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name].value
                       for name in sorted(self.gauges)},
            "histograms": {name: self.histograms[name].as_dict()
                           for name in sorted(self.histograms)},
            "spans": [span.as_dict() for span in self.spans],
        }

    def describe(self) -> str:
        lines = [f"metrics ({len(self.counters)} counters, "
                 f"{len(self.gauges)} gauges, "
                 f"{len(self.histograms)} histograms, "
                 f"{len(self.spans)} spans)"]
        for name in sorted(self.counters):
            lines.append(f"  counter   {name:<32} {self.counters[name].value:g}")
        for name in sorted(self.gauges):
            lines.append(f"  gauge     {name:<32} {self.gauges[name].value:g}")
        for name in sorted(self.histograms):
            h = self.histograms[name]
            p = h.percentiles()
            lines.append(
                f"  histogram {name:<32} count={h.count} sum={h.sum:.6f}s "
                f"p50={p['p50']:.6f}s p95={p['p95']:.6f}s p99={p['p99']:.6f}s")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# OpenMetrics text exposition
# ----------------------------------------------------------------------

#: OpenMetrics metric names: letters, digits, underscore, colon
_OM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_OM_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _om_name(name: str, prefix: str) -> str:
    return f"{prefix}_{_OM_SANITIZE_RE.sub('_', name)}"


def _om_value(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: MetricsRegistry,
                       prefix: str = "repro") -> str:
    """Render a registry in OpenMetrics text exposition format.

    Slash-separated metric paths are sanitized to underscore names and
    prefixed (``run/vectorized/setup`` -> ``repro_run_vectorized_setup``).
    Histograms record seconds, so they export with a ``_seconds`` unit
    suffix.  Output ends with the mandatory ``# EOF`` line and passes
    :func:`validate_openmetrics`.
    """
    if not _OM_NAME_RE.match(prefix):
        raise MetricsError(f"invalid OpenMetrics prefix: {prefix!r}")
    lines: List[str] = []
    seen: Dict[str, str] = {}

    def claim(om_name: str, source: str) -> None:
        clash = seen.get(om_name)
        if clash is not None:
            raise MetricsError(
                f"OpenMetrics name collision: {source!r} and {clash!r} "
                f"both map to {om_name!r}")
        seen[om_name] = source

    for name in sorted(registry.counters):
        om = _om_name(name, prefix)
        claim(om, name)
        lines.append(f"# TYPE {om} counter")
        lines.append(f"{om}_total {_om_value(registry.counters[name].value)}")
    for name in sorted(registry.gauges):
        om = _om_name(name, prefix)
        claim(om, name)
        lines.append(f"# TYPE {om} gauge")
        lines.append(f"{om} {_om_value(registry.gauges[name].value)}")
    for name in sorted(registry.histograms):
        om = _om_name(name, prefix) + "_seconds"
        claim(om, name)
        hist = registry.histograms[name]
        lines.append(f"# TYPE {om} histogram")
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(f'{om}_bucket{{le="{bound!r}"}} {cumulative}')
        lines.append(f'{om}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{om}_sum {_om_value(hist.sum)}")
        lines.append(f"{om}_count {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_OM_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})?\s(\S+)$")
_OM_TYPES = ("counter", "gauge", "histogram", "summary", "unknown",
             "info", "stateset", "gaugehistogram")
_OM_SUFFIXES = {
    "counter": ("_total", "_created"),
    "histogram": ("_bucket", "_sum", "_count", "_created"),
    "gauge": ("",),
}


def validate_openmetrics(text: str) -> List[str]:
    """Lint OpenMetrics exposition text; returns a list of problems.

    Checks the structural rules the exposition format mandates: the
    final ``# EOF`` line, ``# TYPE`` declarations preceding their
    samples, legal metric names, counter samples carrying ``_total``,
    and histogram bucket series that are cumulative, non-decreasing,
    and end with a ``+Inf`` bucket equal to ``_count``.
    """
    errors: List[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines or lines[-1] != "# EOF":
        errors.append("exposition must end with '# EOF'")
    declared: Dict[str, str] = {}
    buckets: Dict[str, List[float]] = {}
    counts: Dict[str, float] = {}
    inf_buckets: Dict[str, float] = {}
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                errors.append(f"line {lineno}: '# EOF' before end of text")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                continue
            if len(parts) == 4 and parts[1] == "TYPE":
                _, _, om_name, om_type = parts
                if not _OM_NAME_RE.match(om_name):
                    errors.append(f"line {lineno}: bad metric name {om_name!r}")
                if om_type not in _OM_TYPES:
                    errors.append(f"line {lineno}: bad metric type {om_type!r}")
                declared[om_name] = om_type
                continue
            errors.append(f"line {lineno}: unrecognised comment {line!r}")
            continue
        match = _OM_SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample {line!r}")
            continue
        sample_name, labels, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        base = None
        for family, family_type in declared.items():
            suffixes = _OM_SUFFIXES.get(family_type, ("",))
            for suffix in suffixes:
                if sample_name == family + suffix:
                    base, suffix_hit = family, suffix
                    break
            if base is not None:
                break
        if base is None:
            errors.append(
                f"line {lineno}: sample {sample_name!r} has no preceding "
                f"# TYPE declaration (or wrong suffix for its type)")
            continue
        if declared[base] == "histogram" and suffix_hit == "_bucket":
            if not labels or "le=" not in labels:
                errors.append(f"line {lineno}: histogram bucket missing 'le'")
                continue
            le_raw = labels.strip("{}").split("le=", 1)[1].split(",")[0]
            le_raw = le_raw.strip('"')
            series = buckets.setdefault(base, [])
            if series and series[-1] > value:
                errors.append(
                    f"line {lineno}: bucket series for {base!r} decreases")
            series.append(value)
            if le_raw == "+Inf":
                inf_buckets[base] = value
        elif declared[base] == "histogram" and suffix_hit == "_count":
            counts[base] = value
    for base, count in counts.items():
        if base not in inf_buckets:
            errors.append(f"histogram {base!r} has no '+Inf' bucket")
        elif inf_buckets[base] != count:
            errors.append(
                f"histogram {base!r}: +Inf bucket {inf_buckets[base]} "
                f"!= count {count}")
    return errors
