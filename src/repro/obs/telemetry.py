"""Observed NoC traffic: per-link loads, wave occupancy, drift checks.

The compile-time scheduled NoCs make traffic *data independent*: which
packets move on which links at which group position is fixed by the
program, not by the spikes it carries.  :class:`NocTelemetry` therefore
stores exact run totals that are reproducible bit-for-bit across backends
— the ``reference`` interpreter tallies every packet it moves, the
``vectorized`` backend scales the per-timestep traffic the lowerer
recorded by ``frames * timesteps``, and ``sharded`` shards sum.  Equality
of the two derivations is itself a parity check of the lowering.

The same per-link keys — ``(tile the hop leaves, direction, net)`` — are
used by :func:`repro.opt.cost.predicted_link_traffic`, the *predicted*
loads of the cost model that drives placement annealing, so
:func:`compare_link_traffic` turns observation into the first real
validation of that model: any drift between predicted and observed
per-timestep link loads is a bug in either the cost model or emission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.isa import Direction
from ..core.tile import TileCoordinate

#: a directed NoC link: (tile the hop leaves, port direction, "spike"/"ps")
LinkKey = Tuple[TileCoordinate, Direction, str]


def link_key_str(key: LinkKey) -> str:
    """Stable string form of a link key (JSON export, parity compare)."""
    tile, direction, net = key
    return f"{tile.row},{tile.col}:{direction.value}:{net}"


@dataclass
class NocTelemetry:
    """Observed NoC traffic of one probed run (exact run totals).

    ``link_packets``/``link_lanes`` count packets and lanes moved per
    directed link over the *whole run*; ``group_packets[g]`` counts the
    packets injected at per-timestep group position ``g`` over the whole
    run (the wave-occupancy profile).  Totals are additive, which is what
    makes the sharded frame-axis merge exact.
    """

    frames: int
    timesteps: int
    link_packets: Dict[LinkKey, int] = field(default_factory=dict)
    link_lanes: Dict[LinkKey, int] = field(default_factory=dict)
    group_packets: Tuple[int, ...] = ()

    # -- derived -------------------------------------------------------
    @property
    def steps(self) -> int:
        return self.frames * self.timesteps

    def per_timestep_link_packets(self) -> Dict[LinkKey, float]:
        """Mean packets per link per timestep (exact — traffic is static)."""
        steps = self.steps or 1
        return {key: count / steps for key, count in self.link_packets.items()}

    def occupancy_profile(self) -> Tuple[float, ...]:
        """Mean packets injected per group position per timestep."""
        steps = self.steps or 1
        return tuple(count / steps for count in self.group_packets)

    def tile_loads(self, net: Optional[str] = None) -> Dict[TileCoordinate, int]:
        """Total outgoing packets per tile (optionally one net only)."""
        loads: Dict[TileCoordinate, int] = {}
        for (tile, _, link_net), count in self.link_packets.items():
            if net is not None and link_net != net:
                continue
            loads[tile] = loads.get(tile, 0) + count
        return loads

    def summary(self) -> Dict[str, object]:
        """JSON-able totals (experiment metadata, bench sections)."""
        packets = self.link_packets
        profile = self.occupancy_profile()
        return {
            "frames": self.frames,
            "timesteps": self.timesteps,
            "links": len(packets),
            "total_packets": int(sum(packets.values())),
            "total_lanes": int(sum(self.link_lanes.values())),
            "max_link_packets_per_timestep": (
                max(self.per_timestep_link_packets().values())
                if packets else 0.0
            ),
            "peak_group_occupancy": max(profile) if profile else 0.0,
        }

    def as_dict(self) -> Dict[str, object]:
        """Full JSON-able form with string link keys (sorted, canonical)."""
        return {
            "frames": self.frames,
            "timesteps": self.timesteps,
            "link_packets": {link_key_str(k): v for k, v in
                             sorted(self.link_packets.items(),
                                    key=lambda kv: link_key_str(kv[0]))},
            "link_lanes": {link_key_str(k): v for k, v in
                           sorted(self.link_lanes.items(),
                                  key=lambda kv: link_key_str(kv[0]))},
            "group_packets": list(self.group_packets),
        }

    def scaled(self, frames: int) -> "NocTelemetry":
        """Telemetry of ``frames`` frames of this run — exact, not a mean.

        The scheduled traffic is data independent, so every total is an
        exact multiple of the frame count; dividing it back out recovers
        precisely what a standalone run of ``frames`` frames observes.
        This is the telemetry leg of the :mod:`repro.serve` per-frame
        decomposition (:meth:`repro.obs.ProbeResult.frame`).
        """
        if frames <= 0:
            raise ValueError(f"frames must be positive, got {frames}")
        if self.frames <= 0 or frames > self.frames:
            raise ValueError(
                f"cannot scale {self.frames}-frame telemetry to {frames}")

        def _exact(count: int) -> int:
            if count % self.frames:
                raise ValueError(
                    f"telemetry total {count} is not a multiple of "
                    f"{self.frames} frames; traffic is not static")
            return count // self.frames * frames

        return NocTelemetry(
            frames=frames,
            timesteps=self.timesteps,
            link_packets={key: _exact(count)
                          for key, count in self.link_packets.items()},
            link_lanes={key: _exact(count)
                        for key, count in self.link_lanes.items()},
            group_packets=tuple(_exact(count)
                                for count in self.group_packets),
        )

    # -- merging -------------------------------------------------------
    @staticmethod
    def merge(parts: Sequence["NocTelemetry"]) -> "NocTelemetry":
        """Sum run totals across shards (frame-axis split of one run)."""
        if not parts:
            raise ValueError("cannot merge zero telemetry parts")
        if any(part.timesteps != parts[0].timesteps for part in parts):
            raise ValueError(
                "telemetry parts disagree on timesteps; they cannot be "
                "shards of one run"
            )
        merged = NocTelemetry(
            frames=sum(part.frames for part in parts),
            timesteps=parts[0].timesteps,
        )
        groups: List[int] = []
        for part in parts:
            for key, count in part.link_packets.items():
                merged.link_packets[key] = \
                    merged.link_packets.get(key, 0) + count
            for key, count in part.link_lanes.items():
                merged.link_lanes[key] = merged.link_lanes.get(key, 0) + count
            for index, count in enumerate(part.group_packets):
                if index >= len(groups):
                    groups.append(0)
                groups[index] += count
        merged.group_packets = tuple(groups)
        return merged


def schedule_telemetry(schedule, frames: int, timesteps: int) -> NocTelemetry:
    """Telemetry of a lowered schedule, scaled to a run's geometry.

    The lowerer records per-timestep per-link traffic and group occupancy
    while it walks the program once; because the scheduled traffic is data
    independent, scaling by ``frames * timesteps`` reproduces exactly what
    the reference interpreter observes packet by packet.
    """
    scale = frames * timesteps
    return NocTelemetry(
        frames=frames,
        timesteps=timesteps,
        link_packets={key: packets * scale
                      for key, (packets, _) in schedule.link_traffic.items()},
        link_lanes={key: lanes * scale
                    for key, (_, lanes) in schedule.link_traffic.items()},
        group_packets=tuple(count * scale
                            for count in schedule.group_occupancy),
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_link_heatmap(loads: Mapping[TileCoordinate, float], rows: int,
                        cols: int, title: str = "tile load",
                        top: Optional[int] = None) -> str:
    """Text heatmap of per-tile loads over a ``rows x cols`` fabric.

    Cells show the load bucketed onto ``. 1-9 a-z *`` (log-ish scale
    against the maximum); ``.`` is zero.  Compact enough for 16x16 fabrics
    in a terminal.  With ``top=N``, renders the N hottest tiles as a
    ranked list instead of the full grid — the readable form for
    full-size meshes.  Ties break on coordinates, so the listing is
    deterministic.
    """
    peak = max(loads.values(), default=0)
    if top is not None:
        if top < 1:
            raise ValueError(f"top must be >= 1, got {top}")
        ranked = sorted(loads.items(),
                        key=lambda item: (-item[1], item[0].row, item[0].col))
        ranked = [(tile, value) for tile, value in ranked if value > 0][:top]
        lines = [f"{title} (peak {peak:g}, top {len(ranked)} of "
                 f"{rows * cols} tiles):"]
        for rank, (tile, value) in enumerate(ranked, start=1):
            share = value / peak if peak else 0.0
            lines.append(f"  {rank:>3}. ({tile.row:>2},{tile.col:>2}) "
                         f"{value:>10g}  {share:6.1%} of peak")
        if not ranked:
            lines.append("  (no loaded tiles)")
        return "\n".join(lines)
    lines = [f"{title} (peak {peak:g}):"]
    glyphs = "123456789abcdefghijklmnopqrstuvwxyz"
    for row in range(rows):
        cells = []
        for col in range(cols):
            value = loads.get(TileCoordinate(row, col), 0)
            if value <= 0:
                cells.append(".")
            elif value >= peak:
                cells.append("*")
            else:
                index = int(value / peak * (len(glyphs) - 1))
                cells.append(glyphs[index])
        lines.append("  " + " ".join(cells))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Predicted vs observed
# ----------------------------------------------------------------------
def compare_link_traffic(predicted: Mapping[LinkKey, int],
                         telemetry: NocTelemetry) -> Dict[str, object]:
    """Drift between the cost model's predicted and the observed loads.

    ``predicted`` comes from :func:`repro.opt.cost.predicted_link_traffic`
    (per-timestep hop counts over a packed route plan); the observed side
    is the telemetry's per-timestep per-link packet counts.  Emission
    issues exactly one NoC operation per route hop, so the expected drift
    is zero — the returned ``max_abs_drift``/``mismatches`` being nonzero
    means the cost model priced traffic the fabric never carried (or
    missed traffic it did).
    """
    observed = telemetry.per_timestep_link_packets()
    keys = set(predicted) | set(observed)
    mismatches: List[Dict[str, object]] = []
    max_abs = 0.0
    for key in sorted(keys, key=link_key_str):
        expect = float(predicted.get(key, 0))
        actual = float(observed.get(key, 0.0))
        drift = abs(actual - expect)
        max_abs = max(max_abs, drift)
        if drift > 1e-9:
            mismatches.append({
                "link": link_key_str(key),
                "predicted": expect,
                "observed": actual,
            })
    return {
        "links_predicted": len(predicted),
        "links_observed": len(observed),
        "max_abs_drift": max_abs,
        "mismatches": mismatches,
    }
