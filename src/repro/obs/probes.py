"""Runtime probes: per-layer visibility into executing programs.

A :class:`ProbeSet` names *what* to observe — per-layer spike counts (and
thus firing rates), membrane-potential snapshots, ``ACC`` switching
activity, NoC link traffic — and every execution backend knows how to
honour one (``backend.run(trains, probes=...)``), returning a
:class:`ProbeResult` on the :class:`~repro.core.simulator.SimulationResult`.

Probe *points* are derived from the compiled program alone, via the
``"<layer>/<stage>"`` phase-naming convention of program emission: the
``fire`` phase's ``SPIKE`` operations locate each layer's group-head tiles
and output lanes, the ``accumulate`` phase's ``ACC`` operations locate its
core tiles.  Deriving the points from the bare
:class:`~repro.mapping.program.Program` keeps the API backend-agnostic —
the same :class:`ProbeSet` resolves identically for the ``reference``
interpreter, the lowered ``vectorized`` schedule and ``sharded`` workers,
which is what makes bit-identical probe results across backends possible
(see :func:`repro.engine.parity.assert_backend_parity`).

All captures are end-of-timestep reads of persistent state (spike
registers, membrane potentials, axon buffers), so probing never perturbs
execution; with no probes attached the backends skip the machinery behind
a single ``None`` check (the near-zero-overhead guarantee gated by
``python -m repro.bench --check``).

This module deliberately imports nothing from :mod:`repro.engine` — the
engine backends import *it*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.isa import CoreAccumulate, SpikeFire
from ..core.ps_router import PsPacket, lane_indices
from ..core.tile import TileCoordinate
from ..mapping.program import Program
from .telemetry import NocTelemetry

#: the probe kinds a ProbeSpec may request
PROBE_KINDS = ("spikes", "potential", "acc")


class ProbeError(ValueError):
    """Raised on invalid probe specifications (unknown kind/layer, ...)."""


@dataclass(frozen=True)
class ProbeSpec:
    """One observation request: a probe ``kind`` on one layer (or all).

    ``kind`` is one of :data:`PROBE_KINDS`: ``"spikes"`` records per-layer
    spike counts per timestep (firing rates derive from them),
    ``"potential"`` snapshots the layer's membrane potentials each
    timestep, ``"acc"`` records the layer's ``ACC`` switching activity
    (spiking axons seen by its accumulates).  ``layer=None`` probes every
    layer of the program.
    """

    kind: str
    layer: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in PROBE_KINDS:
            raise ProbeError(
                f"unknown probe kind {self.kind!r} (one of {PROBE_KINDS})"
            )


@dataclass(frozen=True)
class ProbeSet:
    """An immutable, picklable collection of :class:`ProbeSpec`\\ s.

    ``noc=True`` additionally records NoC telemetry (observed per-link
    packet/lane traffic and per-group wave occupancy, see
    :mod:`repro.obs.telemetry`).  An empty set is falsy and means "no
    probes": backends treat it exactly like ``probes=None``.
    """

    specs: Tuple[ProbeSpec, ...] = ()
    noc: bool = False

    def __bool__(self) -> bool:
        return bool(self.specs) or self.noc

    # -- convenience constructors --------------------------------------
    @classmethod
    def firing_rates(cls, *layers: str, noc: bool = False) -> "ProbeSet":
        """Spike-count probes on ``layers`` (all layers when none named)."""
        names: Sequence[Optional[str]] = layers or (None,)
        return cls(specs=tuple(ProbeSpec("spikes", layer) for layer in names),
                   noc=noc)

    @classmethod
    def full(cls) -> "ProbeSet":
        """Everything: spikes, potentials and ACC activity of every layer,
        plus NoC telemetry."""
        return cls(specs=tuple(ProbeSpec(kind) for kind in PROBE_KINDS),
                   noc=True)

    # -- resolution ----------------------------------------------------
    def layers_for(self, kind: str, names: Sequence[str]) -> List[str]:
        """The probed layer names of one ``kind`` given the program's layers."""
        selected: List[str] = []
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if spec.layer is None:
                return list(names)
            if spec.layer not in names:
                raise ProbeError(
                    f"probe layer {spec.layer!r} not in program "
                    f"(layers: {', '.join(names)})"
                )
            if spec.layer not in selected:
                selected.append(spec.layer)
        return selected

    def resolve(self, program: Program) -> "ResolvedProbes":
        """Bind this probe set to the layers/tiles of one compiled program."""
        points = probe_points(program)
        by_name = {point.name: point for point in points}
        names = [point.name for point in points]
        return ResolvedProbes(
            points=points,
            spikes=[by_name[n] for n in self.layers_for("spikes", names)],
            potentials=[by_name[n] for n in self.layers_for("potential", names)],
            acc=[by_name[n] for n in self.layers_for("acc", names)],
            noc=self.noc,
        )


@dataclass
class LayerProbePoint:
    """Where one logical layer lives on the fabric, for probing purposes.

    ``spike_sites`` lists ``(group-head tile, output lanes)`` pairs in
    group order — the tiles whose spike registers hold the layer's fired
    spikes at the end of a timestep; ``acc_tiles`` lists every tile whose
    core runs the layer's ``ACC``.
    """

    name: str
    spike_sites: List[Tuple[TileCoordinate, np.ndarray]] = field(default_factory=list)
    acc_tiles: List[TileCoordinate] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of probed neurons (total lanes across the spike sites)."""
        return int(sum(lanes.size for _, lanes in self.spike_sites))


@dataclass
class ResolvedProbes:
    """A :class:`ProbeSet` bound to one program's probe points."""

    points: List[LayerProbePoint]
    spikes: List[LayerProbePoint]
    potentials: List[LayerProbePoint]
    acc: List[LayerProbePoint]
    noc: bool = False

    @property
    def empty(self) -> bool:
        return not (self.spikes or self.potentials or self.acc or self.noc)


def probe_points(program: Program) -> List[LayerProbePoint]:
    """Derive every layer's probe points from a compiled program.

    Walks the phases by the ``"<layer>/<stage>"`` naming convention:
    ``SPIKE`` operations in a layer's ``fire`` phase mark its group-head
    tiles (and the output lanes they fire), ``ACC`` operations in its
    ``accumulate`` phase mark its core tiles.  Works on any program that
    follows the convention — compiled or hand-built.
    """
    width = program.arch.core_neurons
    order: List[str] = []
    by_name: Dict[str, LayerProbePoint] = {}
    for phase in program.phases:
        layer, _, stage = phase.name.partition("/")
        point = by_name.get(layer)
        if point is None:
            point = LayerProbePoint(name=layer)
            by_name[layer] = point
            order.append(layer)
        if stage == "fire":
            for group in phase.groups:
                for instruction in group:
                    if isinstance(instruction.op, SpikeFire):
                        lanes = lane_indices(instruction.op.lanes, width)
                        point.spike_sites.append((instruction.tile, lanes))
        elif stage == "accumulate":
            for group in phase.groups:
                for instruction in group:
                    if isinstance(instruction.op, CoreAccumulate):
                        point.acc_tiles.append(instruction.tile)
    return [by_name[name] for name in order]


# ----------------------------------------------------------------------
# Probe results
# ----------------------------------------------------------------------
@dataclass
class ProbeResult:
    """Everything a probed run observed, bit-identical across backends.

    Array shapes: ``spikes[layer]`` and ``acc_active[layer]`` are
    ``(frames, timesteps)`` int64; ``potentials[layer]`` is
    ``(frames, timesteps, layer_size)`` int64 (end-of-timestep membrane
    potentials in group order).  ``sizes`` maps each probed layer to its
    neuron count so firing rates normalise correctly.
    """

    frames: int
    timesteps: int
    sizes: Dict[str, int] = field(default_factory=dict)
    spikes: Dict[str, np.ndarray] = field(default_factory=dict)
    potentials: Dict[str, np.ndarray] = field(default_factory=dict)
    acc_active: Dict[str, np.ndarray] = field(default_factory=dict)
    telemetry: Optional[NocTelemetry] = None

    # -- derived quantities --------------------------------------------
    def spike_totals(self) -> Dict[str, int]:
        """Total spikes fired per probed layer over the whole run."""
        return {name: int(array.sum()) for name, array in self.spikes.items()}

    def firing_rates(self) -> Dict[str, float]:
        """Mean spikes per neuron per timestep, per probed layer."""
        rates: Dict[str, float] = {}
        steps = self.frames * self.timesteps
        for name, array in self.spikes.items():
            neurons = self.sizes.get(name, 0)
            denom = steps * neurons
            rates[name] = float(array.sum() / denom) if denom else 0.0
        return rates

    def acc_activity(self) -> Dict[str, float]:
        """Mean spiking axons per timestep seen by each layer's ``ACC``."""
        steps = self.frames * self.timesteps
        return {
            name: float(array.sum() / steps) if steps else 0.0
            for name, array in self.acc_active.items()
        }

    def summary(self) -> Dict[str, object]:
        """A JSON-able summary (experiment metadata, bench sections)."""
        payload: Dict[str, object] = {
            "frames": self.frames,
            "timesteps": self.timesteps,
            "firing_rates": self.firing_rates(),
            "spike_totals": self.spike_totals(),
        }
        if self.acc_active:
            payload["acc_activity"] = self.acc_activity()
        if self.telemetry is not None:
            payload["noc"] = self.telemetry.summary()
        return payload

    def describe(self) -> str:
        """Per-layer firing-rate table as text."""
        lines = [f"probes over {self.frames} frame(s) x {self.timesteps} "
                 "timestep(s):"]
        rates = self.firing_rates()
        totals = self.spike_totals()
        activity = self.acc_activity()
        for name in self.spikes or self.acc_active:
            parts = [f"  {name:<24}"]
            if name in rates:
                parts.append(f"rate {rates[name]:>8.4f}")
                parts.append(f"spikes {totals[name]:>8}")
            if name in activity:
                parts.append(f"acc axons/step {activity[name]:>10.2f}")
            lines.append("  ".join(parts))
        return "\n".join(lines)

    # -- per-frame decomposition (serving) ------------------------------
    def frame(self, index: int) -> "ProbeResult":
        """The single-frame :class:`ProbeResult` of frame ``index``.

        Every probe array is frame-major, so slicing is exact; the NoC
        telemetry is static (data independent), so scaling it down to one
        frame (:meth:`NocTelemetry.scaled`) reproduces bit-for-bit what a
        standalone one-frame run observes.  This is how :mod:`repro.serve`
        hands each coalesced request its own probes.
        """
        if not 0 <= index < self.frames:
            raise ProbeError(
                f"frame index {index} out of range for {self.frames} frames")
        return ProbeResult(
            frames=1,
            timesteps=self.timesteps,
            sizes=dict(self.sizes),
            spikes={name: array[index:index + 1].copy()
                    for name, array in self.spikes.items()},
            potentials={name: array[index:index + 1].copy()
                        for name, array in self.potentials.items()},
            acc_active={name: array[index:index + 1].copy()
                        for name, array in self.acc_active.items()},
            telemetry=(self.telemetry.scaled(1)
                       if self.telemetry is not None else None),
        )

    # -- merging (sharded backend) -------------------------------------
    @staticmethod
    def concat(parts: Sequence["ProbeResult"]) -> "ProbeResult":
        """Deterministic frame-axis merge of per-shard results (in order)."""
        if not parts:
            raise ProbeError("cannot merge zero probe results")
        first = parts[0]
        merged = ProbeResult(
            frames=sum(part.frames for part in parts),
            timesteps=first.timesteps,
            sizes=dict(first.sizes),
        )
        for attr in ("spikes", "potentials", "acc_active"):
            layers = getattr(first, attr)
            setattr(merged, attr, {
                name: np.concatenate([getattr(part, attr)[name]
                                      for part in parts], axis=0)
                for name in layers
            })
        telemetries = [part.telemetry for part in parts]
        if telemetries[0] is not None:
            merged.telemetry = NocTelemetry.merge(telemetries)
        return merged


# ----------------------------------------------------------------------
# Backend collectors
# ----------------------------------------------------------------------
class ScheduleProbeRun:
    """Vectorized-backend collector: captures batched state per timestep.

    Built per run from the resolved probes and the lowered schedule's
    tile-to-slot map; :meth:`capture` is called by the executor once at the
    end of every timestep (all frames at once).  The NoC leg needs no
    runtime capture at all — the schedule's statically recorded per-link
    traffic and group occupancy scale exactly by ``frames * timesteps``
    (the control flow is data independent).
    """

    def __init__(self, resolved: ResolvedProbes, schedule, frames: int,
                 timesteps: int):
        self.resolved = resolved
        self.schedule = schedule
        self.frames = frames
        self.timesteps = timesteps
        # device-bound schedules carry an array module; captured parts are
        # transferred to host so probe results stay plain numpy everywhere
        self._xp = getattr(schedule, "xp", None)
        slots = schedule.slots
        if not slots and not resolved.empty:
            raise ProbeError(
                "lowered schedule carries no tile-slot map; re-lower the "
                "program with the current repro.engine"
            )

        def sites(point: LayerProbePoint) -> List[Tuple[int, np.ndarray]]:
            return [(slots[tile], lanes) for tile, lanes in point.spike_sites]

        self._spike_sites = [(p.name, sites(p)) for p in resolved.spikes]
        self._pot_sites = [(p.name, sites(p)) for p in resolved.potentials]
        self._acc_slots = [(p.name, [slots[tile] for tile in p.acc_tiles])
                           for p in resolved.acc]
        self.spikes = {name: np.zeros((frames, timesteps), dtype=np.int64)
                       for name, _ in self._spike_sites}
        self.potentials = {
            p.name: np.zeros((frames, timesteps, p.size), dtype=np.int64)
            for p in resolved.potentials
        }
        self.acc_active = {name: np.zeros((frames, timesteps), dtype=np.int64)
                           for name, _ in self._acc_slots}

    def capture(self, state, step: int) -> None:
        """Record end-of-timestep state for every frame of the batch."""
        xp = self._xp
        for name, sites in self._spike_sites:
            column = self.spikes[name][:, step]
            for slot, lanes in sites:
                part = state.spike_reg[slot][:, lanes].sum(axis=1)
                if xp is not None:
                    part = xp.to_host(part)
                column += np.asarray(part, dtype=np.int64)
        for name, sites in self._pot_sites:
            target = self.potentials[name]
            offset = 0
            for slot, lanes in sites:
                part = state.potential[slot][:, lanes]
                if xp is not None:
                    part = xp.to_host(part)
                target[:, step, offset:offset + lanes.size] = part
                offset += lanes.size
        for name, slots in self._acc_slots:
            column = self.acc_active[name][:, step]
            for slot in slots:
                part = state.axons[slot].sum(axis=1)
                if xp is not None:
                    part = xp.to_host(part)
                column += np.asarray(part, dtype=np.int64)

    def result(self) -> ProbeResult:
        telemetry = None
        if self.resolved.noc:
            from .telemetry import schedule_telemetry

            telemetry = schedule_telemetry(self.schedule, self.frames,
                                           self.timesteps)
        return ProbeResult(
            frames=self.frames,
            timesteps=self.timesteps,
            sizes={p.name: p.size for p in self.resolved.spikes},
            spikes=self.spikes,
            potentials=self.potentials,
            acc_active=self.acc_active,
            telemetry=telemetry,
        )


class SimulatorProbeCollector:
    """Reference-backend collector: an observer on the cycle interpreter.

    The :class:`~repro.core.simulator.ShenjingSimulator` calls
    ``begin_timestep`` / ``record_group`` / ``end_timestep`` when (and only
    when) an observer is attached; with none attached the hooks cost one
    ``None`` check.  State reads use the same end-of-timestep semantics as
    :class:`ScheduleProbeRun`, which is what makes the results bit-exact
    across backends.
    """

    def __init__(self, resolved: ResolvedProbes, frames: int, timesteps: int):
        self.resolved = resolved
        self.frames = frames
        self.timesteps = timesteps
        self._frame = 0
        self._step = 0
        self._group = 0
        self.spikes = {p.name: np.zeros((frames, timesteps), dtype=np.int64)
                       for p in resolved.spikes}
        self.potentials = {
            p.name: np.zeros((frames, timesteps, p.size), dtype=np.int64)
            for p in resolved.potentials
        }
        self.acc_active = {p.name: np.zeros((frames, timesteps), dtype=np.int64)
                           for p in resolved.acc}
        #: observed NoC traffic, accumulated over the whole run
        self.link_packets: Dict[Tuple[TileCoordinate, object, str], int] = {}
        self.link_lanes: Dict[Tuple[TileCoordinate, object, str], int] = {}
        self.group_packets: List[int] = []

    # -- simulator hooks -----------------------------------------------
    def begin_timestep(self) -> None:
        self._group = 0

    def record_group(self, outgoing) -> None:
        if not self.resolved.noc:
            return
        if self._group >= len(self.group_packets):
            self.group_packets.append(0)
        self.group_packets[self._group] += len(outgoing)
        self._group += 1
        for src, direction, packet in outgoing:
            net = "ps" if isinstance(packet, PsPacket) else "spike"
            key = (src, direction, net)
            self.link_packets[key] = self.link_packets.get(key, 0) + 1
            self.link_lanes[key] = \
                self.link_lanes.get(key, 0) + int(packet.lanes.size)

    def end_timestep(self, system) -> None:
        frame, step = self._frame, self._step
        for point in self.resolved.spikes:
            total = 0
            for tile, lanes in point.spike_sites:
                register = system.tile(tile).spike_router.spike_register
                total += int(register[lanes].sum())
            self.spikes[point.name][frame, step] = total
        for point in self.resolved.potentials:
            target = self.potentials[point.name]
            offset = 0
            for tile, lanes in point.spike_sites:
                potential = system.tile(tile).spike_router.potential
                target[frame, step, offset:offset + lanes.size] = \
                    potential[lanes]
                offset += lanes.size
        for point in self.resolved.acc:
            total = 0
            for tile in point.acc_tiles:
                total += int(system.tile(tile).core.axon_buffer.sum())
            self.acc_active[point.name][frame, step] = total
        self._step += 1
        if self._step >= self.timesteps:
            self._step = 0
            self._frame += 1

    # -- result assembly -----------------------------------------------
    def result(self) -> ProbeResult:
        telemetry = None
        if self.resolved.noc:
            telemetry = NocTelemetry(
                frames=self.frames,
                timesteps=self.timesteps,
                link_packets=dict(self.link_packets),
                link_lanes=dict(self.link_lanes),
                group_packets=tuple(self.group_packets),
            )
        return ProbeResult(
            frames=self.frames,
            timesteps=self.timesteps,
            sizes={p.name: p.size for p in self.resolved.spikes},
            spikes=self.spikes,
            potentials=self.potentials,
            acc_active=self.acc_active,
            telemetry=telemetry,
        )
