"""Command-line entry point: ``python -m repro.obs <network>``.

Compiles a benchmark builder (random weights, seeded), runs a small probed
batch on the chosen backend and prints the full observability report:
per-layer firing rates, the NoC link heatmap with the predicted-vs-observed
drift check, compile pass timings and the execution-stats breakdown.  With
``--chrome-trace PATH`` the unified compile+execution trace is written as
Chrome ``trace_event`` JSON (open in chrome://tracing or Perfetto); with
``--metrics`` a wall-clock :class:`~repro.obs.MetricsRegistry` is threaded
through compile and run (adding the real-time trace track), exportable as
OpenMetrics text via ``--openmetrics PATH``.  ``--json`` emits the whole
report as one structured JSON object instead of text, and ``--top N``
renders the link heatmap as a ranked top-N tile list (readable on
full-size meshes).
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv=None) -> int:
    from ..apps.networks import ALL_BUILDERS

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Probe a compiled benchmark network and print the "
                    "observability report (see repro.obs).",
        epilog="example: python -m repro.obs --chrome-trace /tmp/trace.json "
               "mnist-mlp-small",
    )
    parser.add_argument("network", choices=sorted(ALL_BUILDERS),
                        help="benchmark builder to compile and probe")
    parser.add_argument("--frames", type=int, default=2,
                        help="frames to execute (default 2)")
    parser.add_argument("--timesteps", type=int, default=4,
                        help="SNN timesteps per frame (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="weight/calibration/input seed (default 0)")
    parser.add_argument("--backend", default="vectorized",
                        help="execution backend (default vectorized)")
    parser.add_argument("--optimized", action="store_true",
                        help="compile through the repro.opt NoC passes")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write the unified trace as Chrome trace_event "
                             "JSON to PATH")
    parser.add_argument("--metrics", action="store_true",
                        help="collect wall-clock metrics (compile spans, run "
                             "phases, timestep histograms) and report them")
    parser.add_argument("--openmetrics", metavar="PATH",
                        help="write the metrics registry as OpenMetrics text "
                             "exposition to PATH (implies --metrics)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as one structured JSON object")
    parser.add_argument("--top", type=int, metavar="N",
                        help="render the link heatmap as the N hottest tiles "
                             "instead of the full grid")
    args = parser.parse_args(argv)

    import numpy as np

    from ..bench import seeded_benchmark_graph
    from ..core.config import DEFAULT_ARCH
    from ..engine import create_backend
    from ..ir.pipeline import compile as ir_compile
    from ..opt.cost import predicted_link_traffic
    from ..snn.encoding import deterministic_encode
    from . import (
        MetricsRegistry,
        ProbeSet,
        Trace,
        compare_link_traffic,
        render_link_heatmap,
        render_openmetrics,
    )

    registry = None
    if args.metrics or args.openmetrics:
        registry = MetricsRegistry()

    graph, rng = seeded_benchmark_graph(args.network, args.timesteps,
                                        seed=args.seed)
    compiled = ir_compile(graph, DEFAULT_ARCH, optimize_noc=args.optimized,
                          metrics=registry)
    program = compiled.program

    trains = deterministic_encode(
        rng.random((args.frames, graph.input_size)), graph.timesteps)
    probes = ProbeSet.full()
    backend = create_backend(args.backend, program)
    try:
        result = backend.run(trains, probes=probes, metrics=registry)
    finally:
        backend.close()

    telemetry = result.probes.telemetry
    drift = None
    if compiled.routes is not None:
        drift = compare_link_traffic(predicted_link_traffic(compiled.routes),
                                     telemetry)
    trace = Trace.from_compiled(compiled, probes=result.probes,
                                timesteps=args.timesteps,
                                resilience=result.resilience,
                                wallclock=registry)
    predictions = np.asarray(result.predictions).tolist()

    if args.as_json:
        payload = {
            "network": args.network,
            "backend": args.backend,
            "frames": args.frames,
            "timesteps": args.timesteps,
            "optimized": bool(args.optimized),
            "probes": result.probes.summary(),
            "stats": result.stats.summary(),
            "predictions": predictions,
            "trace": trace.metrics(),
        }
        if drift is not None:
            payload["drift"] = {
                "mismatched_links": len(drift["mismatches"]),
                "max_abs_drift": drift["max_abs_drift"],
            }
        if registry is not None:
            payload["metrics"] = registry.as_dict()
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(f"=== {args.network} ({args.backend}"
              f"{', optimized' if args.optimized else ''}) ===")
        print()
        print(result.probes.describe())
        print()
        print(render_link_heatmap(telemetry.tile_loads(), program.rows,
                                  program.cols,
                                  title="NoC outgoing packets per tile",
                                  top=args.top))
        if drift is not None:
            print(f"cost model drift: {len(drift['mismatches'])} mismatched "
                  f"link(s), max |predicted - observed| = "
                  f"{drift['max_abs_drift']:g}")
        print()
        print(trace.describe())
        print()
        print(result.stats.describe())
        print(f"\npredictions: {predictions}")

    if args.chrome_trace:
        trace.save(args.chrome_trace)
        if not args.as_json:
            print(f"chrome trace written to {args.chrome_trace}")
    if args.openmetrics:
        with open(args.openmetrics, "w") as handle:
            handle.write(render_openmetrics(registry))
        if not args.as_json:
            print(f"openmetrics exposition written to {args.openmetrics}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
