"""Command-line entry point: ``python -m repro.obs <network>``.

Compiles a benchmark builder (random weights, seeded), runs a small probed
batch on the chosen backend and prints the full observability report:
per-layer firing rates, the NoC link heatmap with the predicted-vs-observed
drift check, compile pass timings and the execution-stats breakdown.  With
``--chrome-trace PATH`` the unified compile+execution trace is written as
Chrome ``trace_event`` JSON (open in chrome://tracing or Perfetto).
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    from ..apps.networks import ALL_BUILDERS

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Probe a compiled benchmark network and print the "
                    "observability report (see repro.obs).",
        epilog="example: python -m repro.obs --chrome-trace /tmp/trace.json "
               "mnist-mlp-small",
    )
    parser.add_argument("network", choices=sorted(ALL_BUILDERS),
                        help="benchmark builder to compile and probe")
    parser.add_argument("--frames", type=int, default=2,
                        help="frames to execute (default 2)")
    parser.add_argument("--timesteps", type=int, default=4,
                        help="SNN timesteps per frame (default 4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="weight/calibration/input seed (default 0)")
    parser.add_argument("--backend", default="vectorized",
                        help="execution backend (default vectorized)")
    parser.add_argument("--optimized", action="store_true",
                        help="compile through the repro.opt NoC passes")
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="write the unified trace as Chrome trace_event "
                             "JSON to PATH")
    args = parser.parse_args(argv)

    import numpy as np

    from ..bench import seeded_benchmark_graph
    from ..core.config import DEFAULT_ARCH
    from ..engine import create_backend
    from ..ir.pipeline import compile as ir_compile
    from ..opt.cost import predicted_link_traffic
    from ..snn.encoding import deterministic_encode
    from . import ProbeSet, Trace, compare_link_traffic, render_link_heatmap

    graph, rng = seeded_benchmark_graph(args.network, args.timesteps,
                                        seed=args.seed)
    compiled = ir_compile(graph, DEFAULT_ARCH, optimize_noc=args.optimized)
    program = compiled.program

    trains = deterministic_encode(
        rng.random((args.frames, graph.input_size)), graph.timesteps)
    probes = ProbeSet.full()
    backend = create_backend(args.backend, program)
    try:
        result = backend.run(trains, probes=probes)
    finally:
        backend.close()

    print(f"=== {args.network} ({args.backend}"
          f"{', optimized' if args.optimized else ''}) ===")
    print()
    print(result.probes.describe())
    print()

    telemetry = result.probes.telemetry
    print(render_link_heatmap(telemetry.tile_loads(), program.rows,
                              program.cols,
                              title="NoC outgoing packets per tile"))
    if compiled.routes is not None:
        drift = compare_link_traffic(predicted_link_traffic(compiled.routes),
                                     telemetry)
        print(f"cost model drift: {len(drift['mismatches'])} mismatched "
              f"link(s), max |predicted - observed| = "
              f"{drift['max_abs_drift']:g}")
    print()

    trace = Trace.from_compiled(compiled, probes=result.probes,
                                timesteps=args.timesteps)
    print(trace.describe())
    print()
    print(result.stats.describe())
    predictions = np.asarray(result.predictions).tolist()
    print(f"\npredictions: {predictions}")

    if args.chrome_trace:
        trace.save(args.chrome_trace)
        print(f"chrome trace written to {args.chrome_trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
