"""The unified trace: one timeline spanning compile and execution.

A :class:`Trace` joins the two halves of the stack that already record
timing but never met: the compiler's per-pass wall-clock records (every
:class:`~repro.ir.passes.PassRecord` the
:class:`~repro.ir.passes.PassManager` appended to the compile trace) and
the analytic execution timeline (the per-layer, per-stage cycle breakdown
of :class:`~repro.timing.TimingEstimate`, which is exact for emitted
programs).  It exports as

* Chrome ``trace_event`` JSON (:meth:`Trace.to_chrome_trace` /
  :meth:`Trace.save`) — loadable in ``chrome://tracing`` or Perfetto,
  with a *compile* process (one slice per pass, real microseconds) and an
  *execution* process (one slice per layer stage per timestep, 1 cycle
  rendered as 1 µs);
* a structured metrics dict (:meth:`Trace.metrics`) for bench sections
  and experiment metadata.

:func:`validate_chrome_trace` checks a payload against the parts of the
``trace_event`` schema the export relies on; the test suite runs it over
every exported trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: trace_event process ids of the four tracks
COMPILE_PID = 1
EXECUTION_PID = 2
RESILIENCE_PID = 3
WALLCLOCK_PID = 4


@dataclass
class Trace:
    """One run's unified observability record.

    ``pass_records`` is the compile trace (objects with ``name`` /
    ``seconds`` / ``summary`` attributes — duck-typed so hand-built
    records work too); ``timing`` the execution-side
    :class:`~repro.timing.TimingEstimate`; ``probes`` an optional
    :class:`~repro.obs.ProbeResult` from an actual probed run;
    ``resilience`` an optional :class:`~repro.resilience.ResilienceReport`
    whose events (retries, crashes, degradations) render with real
    durations on a third track; ``wallclock`` an optional
    :class:`~repro.obs.MetricsRegistry` (or snapshot) whose spans render
    as a fourth, real-time track — the cycle-priced tracks are untouched,
    so model-time and wall-clock views sit side by side.
    """

    name: str = ""
    pass_records: List[object] = field(default_factory=list)
    timing: Optional[object] = None
    probes: Optional[object] = None
    #: timesteps rendered on the execution track
    timesteps: int = 1
    #: resilience report of the run (third trace track), if any
    resilience: Optional[object] = None
    #: wall-clock metrics registry of the run (fourth trace track), if any
    wallclock: Optional[object] = None

    @classmethod
    def from_compiled(cls, compiled, probes: Optional[object] = None,
                      timesteps: Optional[int] = None,
                      resilience: Optional[object] = None,
                      wallclock: Optional[object] = None) -> "Trace":
        """Build the trace of one :class:`CompiledNetwork` compile.

        Pulls the pass records the :class:`~repro.ir.passes.PassManager`
        recorded and the timing estimate the ``timing-model`` pass cached
        (re-derived from the program if the compile skipped that pass).
        """
        timing = getattr(compiled, "timing", None)
        if timing is None and getattr(compiled, "program", None) is not None:
            from ..timing import time_program

            timing = time_program(compiled.program)
        if timesteps is None:
            declared = getattr(timing, "timesteps", None)
            timesteps = int(declared) if declared else 1
        return cls(
            name=getattr(compiled, "name", "") or "",
            pass_records=list(getattr(compiled, "trace", ())),
            timing=timing,
            probes=probes,
            timesteps=timesteps,
            resilience=resilience,
            wallclock=wallclock,
        )

    # -- chrome trace_event export -------------------------------------
    def to_chrome_trace(self) -> Dict[str, object]:
        """The run as a Chrome ``trace_event`` JSON object.

        Two processes: *compile* (pid 1, one ``X`` slice per pass, real
        wall-clock microseconds) and *execution* (pid 2, one ``X`` slice
        per layer stage per timestep, 1 cycle = 1 µs of trace time).
        """
        events: List[Dict[str, object]] = [
            _metadata(COMPILE_PID, "compile"),
            _metadata(EXECUTION_PID, "execution"),
        ]
        clock = 0.0
        for record in self.pass_records:
            duration = max(float(record.seconds) * 1e6, 0.01)
            events.append({
                "name": record.name,
                "cat": "compile",
                "ph": "X",
                "ts": clock,
                "dur": duration,
                "pid": COMPILE_PID,
                "tid": 1,
                "args": {"summary": str(getattr(record, "summary", ""))},
            })
            clock += duration
        if self.timing is not None:
            step_cycles = float(self.timing.cycles_per_timestep)
            for step in range(self.timesteps):
                cursor = step * step_cycles
                for layer in self.timing.layers:
                    for stage, cycles in (
                        ("delivery", layer.delivery_cycles),
                        ("accumulate", layer.accumulate_cycles),
                        ("reduction", layer.reduction_cycles),
                        ("fire", layer.fire_cycles),
                    ):
                        if cycles <= 0:
                            continue
                        events.append({
                            "name": f"{layer.name}/{stage}",
                            "cat": "execution",
                            "ph": "X",
                            "ts": cursor,
                            "dur": float(cycles),
                            "pid": EXECUTION_PID,
                            "tid": 1,
                            "args": {"timestep": step, "cycles": int(cycles)},
                        })
                        cursor += cycles
        resilience_events = getattr(self.resilience, "events", None)
        if resilience_events:
            events.append(_metadata(RESILIENCE_PID, "resilience"))
            timeline = getattr(self.resilience, "timeline", None)
            pairs = (timeline() if callable(timeline)
                     else [(event, 0.0) for event in resilience_events])
            for event, duration in pairs:
                if duration > 0:
                    # real duration: the window the shard spent failed
                    # (until its retry / the report's last observation)
                    events.append({
                        "name": f"resilience/{event.kind}",
                        "cat": "resilience",
                        "ph": "X",
                        "ts": float(event.elapsed) * 1e6,
                        "dur": float(duration) * 1e6,
                        "pid": RESILIENCE_PID,
                        "tid": 1 + (event.shard or 0),
                        "args": event.as_dict(),
                    })
                else:
                    # zero-length window: fall back to an instant marker;
                    # "s": "p" scopes the marker to its process
                    events.append({
                        "name": f"resilience/{event.kind}",
                        "cat": "resilience",
                        "ph": "i",
                        "ts": float(event.elapsed) * 1e6,
                        "pid": RESILIENCE_PID,
                        "tid": 1 + (event.shard or 0),
                        "s": "p",
                        "args": event.as_dict(),
                    })
        wallclock_spans = getattr(self.wallclock, "spans", None)
        if wallclock_spans:
            events.append(_metadata(WALLCLOCK_PID, "wallclock"))
            tracks = sorted({span.track for span in wallclock_spans})
            tids = {track: tid for tid, track in enumerate(tracks, start=1)}
            for span in wallclock_spans:
                events.append({
                    "name": span.name,
                    "cat": "wallclock",
                    "ph": "X",
                    "ts": max(float(span.start), 0.0) * 1e6,
                    "dur": max(float(span.seconds) * 1e6, 0.01),
                    "pid": WALLCLOCK_PID,
                    "tid": tids[span.track],
                    "args": {"track": span.track or "run",
                             "seconds": float(span.seconds)},
                })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"name": self.name, "source": "repro.obs"},
        }

    def save(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)

    # -- structured metrics --------------------------------------------
    def metrics(self) -> Dict[str, object]:
        """Structured summary: per-pass seconds, per-layer cycles, probes."""
        payload: Dict[str, object] = {
            "name": self.name,
            "compile": {
                "passes": [
                    {"name": record.name,
                     "seconds": float(record.seconds),
                     "summary": str(getattr(record, "summary", ""))}
                    for record in self.pass_records
                ],
                "total_seconds": float(sum(
                    record.seconds for record in self.pass_records)),
            },
        }
        if self.timing is not None:
            payload["execution"] = self.timing.as_dict()
        if self.probes is not None:
            payload["probes"] = self.probes.summary()
        if self.resilience is not None:
            payload["resilience"] = self.resilience.as_dict()
        if self.wallclock is not None:
            payload["wallclock"] = self.wallclock.as_dict()
        return payload

    def describe(self) -> str:
        """Pass-timing table as text (the ``--trace`` / CLI rendering)."""
        lines = [f"compile trace ({len(self.pass_records)} passes):"]
        for record in self.pass_records:
            lines.append(f"  {record.name:<24} {record.seconds * 1e3:>9.3f} ms"
                         f"  {getattr(record, 'summary', '')}")
        if self.timing is not None:
            lines.append(self.timing.describe())
        resilience_events = getattr(self.resilience, "events", None)
        if resilience_events:
            lines.append(f"resilience events ({len(resilience_events)}):")
            lines.append(self.resilience.describe())
        if self.wallclock is not None:
            lines.append(self.wallclock.describe())
        return "\n".join(lines)


def _metadata(pid: int, process_name: str) -> Dict[str, object]:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": process_name}}


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------
def validate_chrome_trace(payload: Dict[str, object]) -> List[str]:
    """Errors violating the ``trace_event`` schema (empty list = valid).

    Checks the subset the export relies on: the JSON-object container with
    a ``traceEvents`` array, and per event the required ``name``/``ph``/
    ``pid``/``tid`` fields, with complete (``X``) events also carrying
    numeric non-negative ``ts`` and ``dur``.
    """
    errors: List[str] = []
    if not isinstance(payload, dict):
        return [f"top level must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be an array"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        f"{where}: 'X' event needs numeric non-negative "
                        f"{key!r}, got {value!r}"
                    )
        elif phase == "M":
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: metadata event needs 'args' object")
        elif not isinstance(phase, str) or len(phase) != 1:
            errors.append(f"{where}: invalid phase {phase!r}")
    if not any(isinstance(e, dict) and e.get("ph") == "X" for e in events):
        errors.append("trace contains no complete ('X') events")
    return errors
