"""Span-based wall-clock profiling helpers over :mod:`repro.obs.metrics`.

Everything here degrades to (near) zero cost when ``metrics`` is
``None``, matching the observer/collector contract of the execution
backends: instrumented code pays one ``None`` check, nothing else.

The span *naming convention* is a slash-separated path:

``compile/<pass>``
    one span per compile pass, reusing ``PassRecord`` seconds.
``pipeline/<step>``
    experiment-pipeline phases (e.g. ``pipeline/mapping``).
``run/<backend>/<phase>``
    per-run phases of every backend: ``setup``, ``timesteps``, ``merge``.
``schedule/timestep``
    per-timestep histogram, sampled for at most
    :data:`TIMESTEP_SAMPLE_LIMIT` steps so long runs stay cheap.
``kernels/<Op>``
    fused-plan kernel buckets, one histogram per op class.
``sharded/<phase>``
    worker-pool lifecycle: ``fork``, ``shard`` (the worker-side run,
    re-tagged onto a ``shard<i>`` track by the merge), ``backoff``,
    ``merge``.
``resilience/<kind>``
    supervision events, with real durations from
    ``ResilienceReport.timeline()``.
"""
from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "TIMESTEP_SAMPLE_LIMIT",
    "Stopwatch",
    "stopwatch",
    "span",
    "time_block",
    "absorb_pass_records",
    "absorb_resilience",
]

#: per-timestep duration sampling stops after this many steps per run,
#: bounding instrumentation cost on long simulations.
TIMESTEP_SAMPLE_LIMIT = 64


class Stopwatch:
    """Context manager measuring elapsed wall-clock seconds."""

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def stopwatch() -> Stopwatch:
    """Convenience constructor, pairs with ``with stopwatch() as sw:``."""
    return Stopwatch()


@contextmanager
def span(metrics: Optional[MetricsRegistry], name: str,
         track: str = "") -> Iterator[None]:
    """Time the enclosed block into ``metrics``; no-op when it is None."""
    if metrics is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        metrics.record_span(name, time.perf_counter() - start, track=track)


@contextmanager
def time_block(metrics: Optional[MetricsRegistry], name: str,
               track: str = "") -> Iterator[Stopwatch]:
    """Like :func:`span` but always yields a :class:`Stopwatch`.

    Call sites that need the elapsed seconds themselves (e.g. the
    experiment pipeline's ``mapping_time_ms``) read ``watch.seconds``
    after the block; the measurement lands in ``metrics`` too when one
    is supplied, so a single clock read feeds both consumers.
    """
    watch = Stopwatch()
    watch.__enter__()
    try:
        yield watch
    finally:
        watch.__exit__()
        if metrics is not None:
            metrics.record_span(name, watch.seconds, track=track)


def absorb_pass_records(metrics: Optional[MetricsRegistry], records: Sequence,
                        prefix: str = "compile/") -> None:
    """Surface ``PassRecord`` timings as compile-track spans.

    Passes run strictly sequentially, so the spans are laid end-to-end
    from offset zero — the same convention the Chrome-trace compile
    track uses for its cycle-priced slices.
    """
    if metrics is None:
        return
    offset = 0.0
    for record in records:
        seconds = float(record.seconds)
        metrics.record_span(prefix + str(record.name), seconds,
                            track="compile", start=offset)
        offset += seconds


def absorb_resilience(metrics: Optional[MetricsRegistry], report) -> None:
    """Surface ``ResilienceReport`` events as resilience-track spans.

    Uses ``report.timeline()`` so each event carries a real duration
    (time until the next event on the same shard) instead of the
    instantaneous offsets the report records natively.
    """
    if metrics is None or report is None:
        return
    for event, duration in report.timeline():
        metrics.record_span("resilience/" + str(event.kind), float(duration),
                            track="resilience", start=float(event.elapsed))
