"""The standard compilation pipeline over the layer-graph IR.

``compile(network, arch)`` drives the whole toolchain as named passes:

    graph-build   SnnNetwork | LayerGraph  ->  validated LayerGraph
    logical-map   LayerGraph              ->  LogicalNetwork (cores, groups,
                                              virtual concat sources)
    placement     LogicalNetwork          ->  Placement
    route-pack    Logical + Placement     ->  RoutePlan (conflict-free waves)
    emit-program  RoutePlan               ->  Program (atomic-op schedule)
    timing-model  RoutePlan               ->  TimingEstimate (repro.timing)
    lower         Program                 ->  LoweredSchedule (engine)
    optimize      LoweredSchedule         ->  optimized LoweredSchedule

The first six produce the executable :class:`~repro.mapping.program.Program`
(the historical ``compile_network`` output) plus its analytic cycle estimate
(``CompiledNetwork.timing``); the last two are the execution
engine's schedule passes registered in the same framework, so
``compile(..., to="schedule")`` — or the ``vectorized``/``sharded`` backends
through :func:`repro.engine.vectorized.prepare_schedule` — run one uniform
pipeline end to end.  Every pass is introspectable (``PassManager.describe``)
and checkable (``run(validate=True)`` executes per-pass invariants: graph
acyclicity, logical/placement validity, wave conflict-freedom, program
consistency).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.config import ArchitectureConfig
from ..core.isa import CoreAccumulate, PsBypass, PsSend, PsSum, SpikeBypass, \
    SpikeFire, SpikeReceive, SpikeSend
from ..mapping.compiler import CompiledNetwork
from ..mapping.join import map_add_join
from ..mapping.logical import (
    EXTERNAL_INPUT,
    LogicalLayer,
    LogicalNetwork,
    MappingError,
    VirtualSource,
)
from ..mapping.placement import Placement, place_network
from ..mapping.program import InputBinding, OutputBinding, Phase, Program, TileConfig
from ..mapping.routing import Transfer, Wave, pack_waves, serial_waves, verify_waves
from ..mapping.spike_mapping import canonicalise_axons
from ..snn.spec import SnnNetwork
from .graph import GRAPH_INPUT, LayerGraph, as_layer_graph
from .passes import (
    CompileContext,
    Pass,
    PassManager,
    build_pipeline,
    register_pass,
)

#: pass names of the program-producing pipeline, in order
PROGRAM_PASSES = ("graph-build", "logical-map", "placement", "route-pack",
                  "emit-program", "timing-model")

#: engine passes appended for schedule-producing pipelines
SCHEDULE_PASSES = ("lower", "optimize")


# ----------------------------------------------------------------------
# Logical mapping over the graph
# ----------------------------------------------------------------------
def logical_map(graph: LayerGraph, arch: ArchitectureConfig,
                materialize: bool = True) -> LogicalNetwork:
    """Map every graph node onto logical cores (no placement yet).

    Fire nodes map through the dense/conv mappers (add-joins through
    :func:`~repro.mapping.join.map_add_join`, which merges the
    contributions' reduction groups); concat nodes become wiring-only
    :class:`~repro.mapping.logical.VirtualSource` entries that consumers
    resolve through the spike-NoC locators.
    """
    graph.validate()
    source_names: Dict[str, str] = {GRAPH_INPUT: EXTERNAL_INPUT}
    layers: List[LogicalLayer] = []
    virtuals: Dict[str, VirtualSource] = {}
    index = 0
    for node in graph.topological():
        if node.kind == "input":
            continue
        if node.kind == "concat":
            parts = [
                (source_names[producer], indices)
                for producer, indices in graph.concat_parts(node.name)
            ]
            virtuals[node.name] = VirtualSource(
                name=node.name, size=node.out_size, parts=parts)
            source_names[node.name] = node.name
            continue
        contributions = [
            (spec, source_names[source]) for spec, source in node.contributions()
        ]
        layer = map_add_join(node.name, contributions, arch, start_index=index,
                             materialize=materialize, threshold=node.threshold)
        layers.append(layer)
        index += layer.n_cores
        source_names[node.name] = layer.name
    if not layers:
        raise MappingError(f"graph {graph.name!r} has no firing layers")
    network = LogicalNetwork(
        name=graph.name,
        input_size=graph.input_size,
        layers=layers,
        metadata={"timesteps": graph.timesteps,
                  "output": source_names[graph.output]},
        virtual_sources=virtuals,
    )
    network.validate(arch)
    return network


# ----------------------------------------------------------------------
# Route planning (spike delivery + PS reduction, packed into waves)
# ----------------------------------------------------------------------
@dataclass
class LayerRoutes:
    """Planned NoC traffic of one logical layer."""

    layer: str
    input_bindings: List[InputBinding] = field(default_factory=list)
    delivery_waves: List[Wave] = field(default_factory=list)
    #: PS accumulation rounds; each round is a list of parallel waves
    reduction_rounds: List[List[Wave]] = field(default_factory=list)


@dataclass
class RoutePlan:
    """All planned NoC traffic plus the locators it was derived from."""

    layers: List[LayerRoutes]
    locators: Dict[str, Dict[int, Tuple[int, int]]]

    def all_waves(self) -> Iterator[Wave]:
        for layer in self.layers:
            yield from layer.delivery_waves
            for round_waves in layer.reduction_rounds:
                yield from round_waves

    def wave_count(self) -> int:
        return sum(1 for _ in self.all_waves())


def build_routes(logical: LogicalNetwork, placement: Placement,
                 wave_packing: bool = True,
                 delivery_strategy=None,
                 reduction_strategy=None) -> RoutePlan:
    """Plan every spike delivery and partial-sum reduction as routed waves.

    Canonicalises each consumer core's axons (producer-contiguous,
    lane-ascending — permuting the weight rows along) and packs the
    resulting transfers into conflict-free waves.  Must run before program
    emission: the canonicalisation mutates core weight ordering.

    ``delivery_strategy`` / ``reduction_strategy`` are optional rewrite hooks
    installed by the :mod:`repro.opt` passes: the delivery strategy's
    ``rewrite(transfers, placement)`` may merge point-to-point spike
    transfers into multicast chains, and the reduction strategy's
    ``rounds(layer, placement)`` replaces the serial member-to-head
    accumulation with its own round schedule (e.g. balanced trees).
    """
    pack = pack_waves if wave_packing else serial_waves
    locators = logical.build_locators()
    segments_by_core: Dict[int, list] = {}
    for layer in logical.layers:
        for core in layer.cores:
            if core.source == EXTERNAL_INPUT:
                continue
            segments_by_core[core.index] = canonicalise_axons(
                core, locators[core.source])

    plan_layers: List[LayerRoutes] = []
    for layer in logical.layers:
        routes = LayerRoutes(layer=layer.name)
        transfers: List[Transfer] = []
        for core in layer.cores:
            if core.source == EXTERNAL_INPUT:
                routes.input_bindings.append(InputBinding(
                    tile=placement.position(core.index),
                    indices=core.axon_sources.copy(),
                    axon_offset=0,
                ))
                continue
            consumer_tile = placement.position(core.index)
            for segment in segments_by_core[core.index]:
                transfers.append(Transfer(
                    src=placement.position(segment.producer_core),
                    dst=consumer_tile,
                    net="spike",
                    lanes=frozenset(int(lane) for lane in segment.lanes),
                    payload={"axon_offset": segment.axon_offset},
                ))
        if transfers:
            if delivery_strategy is not None:
                transfers = delivery_strategy.rewrite(transfers, placement)
            routes.delivery_waves = pack(transfers)

        if reduction_strategy is not None:
            for round_transfers in reduction_strategy.rounds(layer, placement):
                routes.reduction_rounds.append(pack(round_transfers))
        else:
            max_members = max((len(group.members) for group in layer.groups),
                              default=0)
            for round_index in range(max_members):
                round_transfers: List[Transfer] = []
                for group in layer.groups:
                    members = group.members
                    if round_index >= len(members):
                        continue
                    round_transfers.append(Transfer(
                        src=placement.position(members[round_index]),
                        dst=placement.position(group.head),
                        net="ps",
                        lanes=frozenset(int(lane) for lane in group.lanes),
                        payload={"consecutive": round_index > 0},
                    ))
                routes.reduction_rounds.append(pack(round_transfers))
        plan_layers.append(routes)
    return RoutePlan(layers=plan_layers, locators=locators)


# ----------------------------------------------------------------------
# Program emission
# ----------------------------------------------------------------------
def emit_program(logical: LogicalNetwork, placement: Placement,
                 routes: RoutePlan, arch: ArchitectureConfig) -> Program:
    """Emit the cycle-by-cycle :class:`Program` from a routed plan."""
    output_name = logical.metadata.get("output") or logical.layers[-1].name
    output_locator = routes.locators[output_name]
    program = Program(
        arch=arch,
        rows=placement.rows,
        cols=placement.cols,
        input_size=logical.input_size,
        output_size=len(output_locator),
        metadata={"name": logical.name,
                  "timesteps": logical.metadata.get("timesteps")},
    )
    _emit_tile_configs(program, logical, placement, arch)
    for layer, layer_routes in zip(logical.layers, routes.layers):
        program.input_bindings.extend(layer_routes.input_bindings)
        if layer_routes.delivery_waves:
            phase = program.new_phase(f"{layer.name}/deliver")
            for wave in layer_routes.delivery_waves:
                _emit_spike_wave(phase, wave)
        phase = program.new_phase(f"{layer.name}/accumulate")
        group = phase.new_group("acc")
        for core in layer.cores:
            group.add(placement.position(core.index),
                      CoreAccumulate(banks=arch.sram_banks))
        if layer_routes.reduction_rounds:
            phase = program.new_phase(f"{layer.name}/ps-reduce")
            for round_waves in layer_routes.reduction_rounds:
                for wave in round_waves:
                    _emit_ps_wave(phase, wave)
        phase = program.new_phase(f"{layer.name}/fire")
        group = phase.new_group("spike")
        for reduction in layer.groups:
            lanes = frozenset(int(lane) for lane in reduction.lanes)
            group.add(
                placement.position(reduction.head),
                SpikeFire(use_noc_sum=len(reduction.core_indices) > 1,
                          lanes=lanes),
            )
    _emit_output_bindings(program, output_locator, placement)
    program.validate()
    return program


def _emit_tile_configs(program: Program, logical: LogicalNetwork,
                       placement: Placement, arch: ArchitectureConfig) -> None:
    for layer in logical.layers:
        for core in layer.cores:
            if core.weights is None:
                raise MappingError(
                    f"core {core.index} of {layer.name} has no materialised "
                    "weights; program emission requires materialize=True "
                    "mappings"
                )
            weights = np.zeros((arch.core_inputs, arch.core_neurons),
                               dtype=np.int16)
            weights[:core.n_axons, :core.lane_outputs.size] = core.weights
            thresholds = np.full(arch.core_neurons, layer.threshold,
                                 dtype=np.int64)
            program.add_tile_config(TileConfig(
                tile=placement.position(core.index),
                weights=weights,
                thresholds=thresholds,
                label=f"{layer.name}/core{core.index}",
            ))


def _emit_output_bindings(program: Program,
                          locator: Dict[int, Tuple[int, int]],
                          placement: Placement) -> None:
    by_core: Dict[int, List[Tuple[int, int]]] = {}
    for output_index, (core_index, lane) in locator.items():
        by_core.setdefault(core_index, []).append((int(lane), int(output_index)))
    for core_index in sorted(by_core):
        pairs = sorted(by_core[core_index])
        program.output_bindings.append(OutputBinding(
            tile=placement.position(core_index),
            lanes=tuple(lane for lane, _ in pairs),
            output_indices=tuple(index for _, index in pairs),
        ))


# ----------------------------------------------------------------------
# Wave expansion into instruction groups
# ----------------------------------------------------------------------
def _emit_spike_wave(phase: Phase, wave: Wave) -> None:
    routes = [transfer.route for transfer in wave.transfers]
    ejects = [dict(transfer.payload.get("ejects", ()))
              for transfer in wave.transfers]
    depth = max(len(route) for route in routes) + 1
    for step in range(depth):
        group = phase.new_group(f"spike-wave-step{step}")
        for transfer, route, eject_at in zip(wave.transfers, routes, ejects):
            if step < len(route):
                hop = route[step]
                if step == 0:
                    group.add(hop.tile, SpikeSend(dst=hop.direction,
                                                  lanes=transfer.lanes))
                else:
                    incoming = route[step - 1].direction.opposite
                    group.add(hop.tile, SpikeBypass(
                        src=incoming, dst=hop.direction, lanes=transfer.lanes,
                        eject=step in eject_at,
                        axon_offset=int(eject_at.get(step, 0)),
                    ))
            elif step == len(route):
                incoming = route[-1].direction.opposite
                group.add(transfer.dst, SpikeReceive(
                    src=incoming,
                    axon_offset=int(transfer.payload["axon_offset"]),
                    lanes=transfer.lanes,
                ))


def _emit_ps_wave(phase: Phase, wave: Wave) -> None:
    routes = [transfer.route for transfer in wave.transfers]
    depth = max(len(route) for route in routes) + 1
    for step in range(depth):
        group = phase.new_group(f"ps-wave-step{step}")
        for transfer, route in zip(wave.transfers, routes):
            if step < len(route):
                hop = route[step]
                if step == 0:
                    group.add(hop.tile, PsSend(
                        dst=hop.direction,
                        use_sum_buf=bool(transfer.payload.get("use_sum_buf",
                                                              False)),
                        lanes=transfer.lanes,
                    ))
                else:
                    incoming = route[step - 1].direction.opposite
                    group.add(hop.tile, PsBypass(
                        src=incoming, dst=hop.direction, lanes=transfer.lanes,
                    ))
            elif step == len(route):
                incoming = route[-1].direction.opposite
                group.add(transfer.dst, PsSum(
                    src=incoming,
                    consecutive=bool(transfer.payload.get("consecutive", False)),
                    lanes=transfer.lanes,
                ))


# ----------------------------------------------------------------------
# The passes
# ----------------------------------------------------------------------
@register_pass
class GraphBuildPass(Pass):
    """Normalise the input network into a validated :class:`LayerGraph`."""

    name = "graph-build"
    requires = ("network",)
    provides = ("graph",)

    def run(self, ctx: CompileContext) -> str:
        graph = as_layer_graph(ctx.require("network"))
        graph.validate()
        ctx.set("graph", graph)
        joins = sum(1 for node in graph.fire_nodes() if node.is_join)
        return (f"{len(graph.nodes) - 1} nodes "
                f"({joins} add-join, "
                f"{sum(1 for n in graph.nodes.values() if n.kind == 'concat')} "
                "concat)")

    def verify(self, ctx: CompileContext) -> None:
        ctx.require("graph").validate()


@register_pass
class LogicalMapPass(Pass):
    """Split every graph node over logical cores and reduction groups."""

    name = "logical-map"
    requires = ("graph",)
    provides = ("logical",)

    def run(self, ctx: CompileContext) -> str:
        logical = logical_map(ctx.require("graph"), ctx.arch,
                              materialize=bool(ctx.option("materialize", True)))
        ctx.set("logical", logical)
        return (f"{logical.n_cores} cores in {len(logical.layers)} layers, "
                f"{len(logical.virtual_sources)} virtual source(s)")

    def verify(self, ctx: CompileContext) -> None:
        ctx.require("logical").validate(ctx.arch)


@register_pass
class PlacementPass(Pass):
    """Place logical cores onto the tile fabric."""

    name = "placement"
    requires = ("logical",)
    provides = ("placement",)

    def run(self, ctx: CompileContext) -> str:
        placement = place_network(ctx.require("logical"), ctx.arch,
                                  rows=ctx.option("rows"))
        ctx.set("placement", placement)
        return (f"{placement.rows}x{placement.cols} fabric, "
                f"{placement.chips_used()} chip(s)")

    def verify(self, ctx: CompileContext) -> None:
        placement = ctx.require("placement")
        placement.validate()
        logical = ctx.require("logical")
        if placement.n_placed != logical.n_cores:
            raise MappingError(
                f"placement covers {placement.n_placed} cores, logical "
                f"network has {logical.n_cores}"
            )


@register_pass
class RoutePackPass(Pass):
    """Turn logical movements into XY-routed, conflict-free waves."""

    name = "route-pack"
    requires = ("logical", "placement")
    provides = ("routes",)

    def run(self, ctx: CompileContext) -> str:
        routes = build_routes(ctx.require("logical"), ctx.require("placement"),
                              wave_packing=bool(ctx.option("wave_packing", True)),
                              delivery_strategy=ctx.get("delivery_strategy"),
                              reduction_strategy=ctx.get("reduction_strategy"))
        ctx.set("routes", routes)
        return f"{routes.wave_count()} waves"

    def verify(self, ctx: CompileContext) -> None:
        verify_waves(list(ctx.require("routes").all_waves()))


@register_pass
class EmitProgramPass(Pass):
    """Emit the executable cycle-by-cycle program."""

    name = "emit-program"
    requires = ("logical", "placement", "routes")
    provides = ("program",)

    def run(self, ctx: CompileContext) -> str:
        program = emit_program(ctx.require("logical"), ctx.require("placement"),
                               ctx.require("routes"), ctx.arch)
        ctx.set("program", program)
        return (f"{program.instruction_count} instructions/timestep in "
                f"{len(program.phases)} phases")

    def verify(self, ctx: CompileContext) -> None:
        ctx.require("program").validate()


@register_pass
class TimingModelPass(Pass):
    """Price the packed route plan with the analytic timing model."""

    name = "timing-model"
    requires = ("routes",)
    provides = ("timing",)

    def run(self, ctx: CompileContext) -> str:
        from ..timing import time_route_plan

        logical = ctx.get("logical")
        name = logical.name if logical is not None else ""
        timesteps = logical.metadata.get("timesteps") \
            if logical is not None else None
        timing = time_route_plan(ctx.require("routes"), ctx.arch,
                                 name=name, timesteps=timesteps)
        ctx.set("timing", timing)
        return f"{timing.cycles_per_timestep} cycles/timestep"

    def verify(self, ctx: CompileContext) -> None:
        # the wave-derived estimate must equal the emitted program's group
        # latencies exactly — any divergence is a model (or emission) bug
        program = ctx.get("program")
        if program is None:
            return
        estimated = ctx.require("timing").cycles_per_timestep
        emitted = program.cycles_per_timestep()
        if estimated != emitted:
            raise MappingError(
                f"timing model estimates {estimated} cycles/timestep but the "
                f"emitted program takes {emitted}"
            )


@register_pass
class LowerPass(Pass):
    """Lower the program to the engine's flat batched schedule."""

    name = "lower"
    requires = ("program",)
    provides = ("schedule",)

    def run(self, ctx: CompileContext) -> str:
        from ..engine.lowering import lower_program

        schedule = lower_program(ctx.require("program"))
        ctx.set("schedule", schedule)
        return f"{schedule.op_count} lowered ops"


@register_pass
class OptimizeSchedulePass(Pass):
    """Run the engine's bit-exact schedule optimizer."""

    name = "optimize"
    requires = ("schedule",)
    provides = ("schedule",)

    def run(self, ctx: CompileContext) -> str:
        from ..engine.optimize import optimize_schedule

        schedule = optimize_schedule(ctx.require("schedule"))
        ctx.set("schedule", schedule)
        return f"{schedule.op_count} ops after optimization"

    def verify(self, ctx: CompileContext) -> None:
        if not ctx.require("schedule").optimized:
            raise MappingError("optimize pass left the schedule unoptimized")


# ----------------------------------------------------------------------
# Pipelines and the single entry point
# ----------------------------------------------------------------------
def default_pipeline(to: str = "program") -> PassManager:
    """The standard pipeline, ending at ``"program"`` or ``"schedule"``."""
    if to == "program":
        return build_pipeline(PROGRAM_PASSES)
    if to == "schedule":
        return build_pipeline(PROGRAM_PASSES + SCHEDULE_PASSES)
    raise MappingError(f"unknown pipeline target {to!r} "
                       "(expected 'program' or 'schedule')")


def schedule_pipeline(optimize: bool = True) -> PassManager:
    """The engine's schedule passes alone (program -> lowered schedule)."""
    names = ("lower", "optimize") if optimize else ("lower",)
    return build_pipeline(names)


def compile(network: Union[SnnNetwork, LayerGraph], arch: ArchitectureConfig,
            pipeline: Optional[Union[PassManager, Sequence[str]]] = None,
            rows: Optional[int] = None, wave_packing: bool = True,
            materialize: bool = True, validate: bool = False,
            to: str = "program", optimize_noc: bool = False,
            noc_options: Optional[Dict[str, object]] = None,
            metrics=None) -> CompiledNetwork:
    """Compile a network (flat or DAG) through the pass pipeline.

    Parameters
    ----------
    network:
        An :class:`SnnNetwork` (residual blocks are expanded into add-join
        patterns) or a :class:`LayerGraph` with arbitrary DAG topology.
    pipeline:
        A custom :class:`PassManager`, or a sequence of registered pass
        names; defaults to :func:`default_pipeline` (or, with
        ``optimize_noc``, :func:`repro.opt.optimized_pipeline`).
    validate:
        Run every pass's invariant checks (acyclicity, placement validity,
        wave conflict-freedom, program consistency) after it executes.
    to:
        ``"program"`` (default) or ``"schedule"`` — how far the default
        pipeline runs; ignored when ``pipeline`` is given.
    optimize_noc:
        Insert the :mod:`repro.opt` NoC optimization passes
        (congestion-aware placement, multicast delivery, reduction trees)
        between ``placement`` and ``route-pack``.  Ignored when an explicit
        ``pipeline`` is given.
    noc_options:
        Extra options for the NoC passes (``noc_seed``,
        ``noc_placement_iterations``, ``multicast_max_targets``, ...).
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`; every pass timing is
        mirrored into it as a ``compile/<pass>`` span in addition to the
        ``trace`` PassRecords.
    """
    if pipeline is None:
        if optimize_noc:
            from ..opt import optimized_pipeline

            manager = optimized_pipeline(to)
        else:
            manager = default_pipeline(to)
    elif isinstance(pipeline, PassManager):
        manager = pipeline
    else:
        manager = build_pipeline(list(pipeline))
    options: Dict[str, object] = {
        "rows": rows,
        "wave_packing": wave_packing,
        "materialize": materialize,
    }
    options.update(noc_options or {})
    ctx = CompileContext(arch, network=network, options=options)
    ctx.metrics = metrics
    manager.run(ctx, validate=validate)
    return CompiledNetwork(
        program=ctx.get("program"),
        logical=ctx.get("logical"),
        placement=ctx.get("placement"),
        snn=network if isinstance(network, SnnNetwork) else None,
        graph=ctx.get("graph"),
        schedule=ctx.get("schedule"),
        routes=ctx.get("routes"),
        timing=ctx.get("timing"),
        trace=list(ctx.trace),
    )
