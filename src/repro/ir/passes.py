"""Pass framework: named, composable, introspectable compilation passes.

A :class:`Pass` transforms *artifacts* held by a :class:`CompileContext`
(the layer graph, the logical mapping, the placement, the routed waves, the
emitted program, the lowered schedule, ...).  A :class:`PassManager` runs an
ordered list of passes, records a timing/summary trace, and supports simple
surgery (insert/replace/drop) so experiments land as small passes instead of
compiler rewrites.

Passes declare the artifact keys they ``require`` and ``provide``; the
manager checks both so a mis-ordered pipeline fails with a clear error
instead of an ``AttributeError`` three layers down.  Each pass may implement
``verify`` — an invariant check (graph acyclicity, placement validity, wave
conflict-freedom, ...) that ``PassManager.run(validate=True)`` executes
after the pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import ArchitectureConfig


class PassError(RuntimeError):
    """Raised on pipeline misuse (missing artifacts, unknown passes, ...)."""


@dataclass
class PassRecord:
    """One trace entry: what a pass did and how long it took."""

    name: str
    seconds: float
    summary: str = ""

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (trace export, bench compile-trace sections)."""
        return {"name": self.name, "seconds": self.seconds,
                "summary": self.summary}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        suffix = f" — {self.summary}" if self.summary else ""
        return f"{self.name}: {self.seconds * 1e3:.1f} ms{suffix}"


class CompileContext:
    """Mutable state threaded through a pass pipeline."""

    def __init__(self, arch: ArchitectureConfig, network=None,
                 options: Optional[Dict[str, object]] = None):
        self.arch = arch
        self.options: Dict[str, object] = dict(options or {})
        self.artifacts: Dict[str, object] = {}
        if network is not None:
            self.artifacts["network"] = network
        self.trace: List[PassRecord] = []
        #: optional wall-clock sink (duck-typed ``repro.obs.MetricsRegistry``):
        #: when set, the pass manager mirrors every PassRecord into it as a
        #: ``compile/<pass>`` span, so one snapshot holds compile + run time
        self.metrics = None

    def get(self, key: str, default=None):
        return self.artifacts.get(key, default)

    def set(self, key: str, value) -> None:
        self.artifacts[key] = value

    def require(self, key: str):
        try:
            return self.artifacts[key]
        except KeyError:
            raise PassError(
                f"artifact {key!r} is not available; run the pass that "
                f"provides it first (have: {sorted(self.artifacts)})"
            ) from None

    def option(self, key: str, default=None):
        return self.options.get(key, default)

    def describe_trace(self) -> str:
        return "\n".join(str(record) for record in self.trace)


class Pass:
    """Base class of all compilation passes."""

    #: unique pass name (the registry / pipeline key)
    name: str = ""
    #: artifact keys that must exist before the pass runs
    requires: Tuple[str, ...] = ()
    #: artifact keys the pass adds or replaces
    provides: Tuple[str, ...] = ()

    def run(self, ctx: CompileContext) -> Optional[str]:
        """Execute the pass; optionally return a one-line summary."""
        raise NotImplementedError

    def verify(self, ctx: CompileContext) -> None:
        """Check the pass's invariants (used by ``run(validate=True)``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """A pass defined by a plain function (for quick custom passes)."""

    def __init__(self, name: str, fn: Callable[[CompileContext], Optional[str]],
                 requires: Sequence[str] = (), provides: Sequence[str] = ()):
        self.name = name
        self._fn = fn
        self.requires = tuple(requires)
        self.provides = tuple(provides)

    def run(self, ctx: CompileContext) -> Optional[str]:
        return self._fn(ctx)


class PassManager:
    """An ordered pass pipeline with trace recording and simple surgery."""

    def __init__(self, passes: Sequence[Pass]):
        self.passes: List[Pass] = list(passes)
        names = [p.name for p in self.passes]
        if len(set(names)) != len(names):
            raise PassError(f"duplicate pass names in pipeline: {names}")

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def describe(self) -> str:
        lines = ["PassManager:"]
        for p in self.passes:
            requires = ", ".join(p.requires) or "-"
            provides = ", ".join(p.provides) or "-"
            lines.append(f"  {p.name:<16} requires: {requires:<24} "
                         f"provides: {provides}")
        return "\n".join(lines)

    def _index(self, name: str) -> int:
        for position, p in enumerate(self.passes):
            if p.name == name:
                return position
        raise PassError(f"no pass named {name!r} in pipeline {self.names()}")

    def insert_after(self, name: str, new_pass: Pass) -> "PassManager":
        position = self._index(name)
        return PassManager(self.passes[:position + 1] + [new_pass]
                           + self.passes[position + 1:])

    def insert_before(self, name: str, new_pass: Pass) -> "PassManager":
        position = self._index(name)
        return PassManager(self.passes[:position] + [new_pass]
                           + self.passes[position:])

    def replace(self, name: str, new_pass: Pass) -> "PassManager":
        position = self._index(name)
        return PassManager(self.passes[:position] + [new_pass]
                           + self.passes[position + 1:])

    def without(self, name: str) -> "PassManager":
        position = self._index(name)
        return PassManager(self.passes[:position] + self.passes[position + 1:])

    # ------------------------------------------------------------------
    def run(self, ctx: CompileContext, validate: bool = False) -> CompileContext:
        """Run every pass in order; with ``validate`` run invariant checks."""
        for p in self.passes:
            for key in p.requires:
                if key not in ctx.artifacts:
                    raise PassError(
                        f"pass {p.name!r} requires artifact {key!r} which no "
                        f"earlier pass provided (have: {sorted(ctx.artifacts)})"
                    )
            start = time.perf_counter()
            summary = p.run(ctx) or ""
            seconds = time.perf_counter() - start
            for key in p.provides:
                if key not in ctx.artifacts:
                    raise PassError(
                        f"pass {p.name!r} declared it provides {key!r} but "
                        "did not set it"
                    )
            ctx.trace.append(PassRecord(name=p.name, seconds=seconds,
                                        summary=summary))
            if ctx.metrics is not None:
                # mirror the record as a compile-track span (spans with no
                # explicit start lay end-to-end per track, matching the
                # sequential pass execution)
                ctx.metrics.record_span("compile/" + p.name, seconds,
                                        track="compile")
            if validate:
                p.verify(ctx)
        return ctx


# ----------------------------------------------------------------------
# Pass registry (name -> factory), so pipelines can be built by name
# ----------------------------------------------------------------------
PASS_REGISTRY: Dict[str, Callable[[], Pass]] = {}


def register_pass(cls):
    """Class decorator: register a Pass subclass under its ``name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise PassError(f"pass class {cls.__name__} must define a name")
    if name in PASS_REGISTRY and PASS_REGISTRY[name] is not cls:
        raise PassError(f"pass {name!r} is already registered")
    PASS_REGISTRY[name] = cls
    return cls


def build_pass(name: str) -> Pass:
    """Instantiate the registered pass ``name``."""
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(PASS_REGISTRY)) or "<none>"
        raise PassError(
            f"unknown pass {name!r} (available: {available})"
        ) from None
    return factory()


def build_pipeline(names: Sequence[str]) -> PassManager:
    """Build a :class:`PassManager` from registered pass names."""
    return PassManager([build_pass(name) for name in names])
