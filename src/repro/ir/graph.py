"""The layer-graph intermediate representation.

A :class:`LayerGraph` is a DAG of named nodes over quantised layer specs
(:mod:`repro.snn.spec`), replacing the flat layer list (and its special-cased
residual blocks) as the compiler's input:

``input``
    The external spike source (exactly one, created with the graph).

``fire``
    An integrate-and-fire stage.  It carries one linear layer spec *per
    incoming edge*; with one edge it is an ordinary dense/conv/pool layer,
    with several edges it is an **add-join** — the contributions' partial
    sums are added (through the PS NoCs, once mapped) before the single
    threshold comparison.  Residual shortcuts, and any other skip topology,
    are plain add-joins here.

``concat``
    A wiring-only join: its output vector is the concatenation of its
    inputs (channel-wise for same-sized feature maps, flat otherwise).  It
    maps to *no* hardware operation — consumers simply read producer lanes.

Nodes are appended in topological order by construction (every input must
already exist); :meth:`LayerGraph.validate` re-checks acyclicity and shape
consistency independently so pass pipelines can assert the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..snn.spec import ConvSpec, DenseSpec, LayerSpec, ResidualBlockSpec, SnnNetwork

#: name of the implicit external-input node (matches the logical toolchain's
#: :data:`repro.mapping.logical.EXTERNAL_INPUT`)
GRAPH_INPUT = "__input__"


class GraphError(ValueError):
    """Raised on malformed layer graphs (cycles, shape mismatches, ...)."""


@dataclass
class GraphNode:
    """One node of a :class:`LayerGraph`."""

    name: str
    kind: str                       # "input" | "fire" | "concat"
    inputs: Tuple[str, ...] = ()
    #: for "fire" nodes: one linear spec per incoming edge
    specs: Tuple[LayerSpec, ...] = ()
    output_shape: Tuple[int, ...] = ()

    @property
    def out_size(self) -> int:
        return int(np.prod(self.output_shape))

    @property
    def is_join(self) -> bool:
        return len(self.inputs) > 1

    @property
    def threshold(self) -> int:
        """Firing threshold of a fire node (the primary contribution's)."""
        if self.kind != "fire":
            raise GraphError(f"node {self.name} ({self.kind}) does not fire")
        return self.specs[0].threshold

    def contributions(self) -> List[Tuple[LayerSpec, str]]:
        """(spec, input) pairs of a fire node."""
        if self.kind != "fire":
            raise GraphError(f"node {self.name} ({self.kind}) has no contributions")
        return list(zip(self.specs, self.inputs))


class LayerGraph:
    """A DAG of layer specs with explicit multi-input/multi-output edges."""

    def __init__(self, name: str, input_shape: Sequence[int], timesteps: int = 20,
                 metadata: Optional[dict] = None):
        if timesteps <= 0:
            raise GraphError("timesteps must be positive")
        self.name = name
        self.input_shape: Tuple[int, ...] = tuple(int(v) for v in input_shape)
        self.timesteps = int(timesteps)
        self.metadata = dict(metadata or {})
        self.nodes: Dict[str, GraphNode] = {}
        self.output: Optional[str] = None
        self._add_node(GraphNode(name=GRAPH_INPUT, kind="input",
                                 output_shape=self.input_shape))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_node(self, node: GraphNode) -> str:
        if node.name in self.nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        for source in node.inputs:
            if source not in self.nodes:
                raise GraphError(
                    f"node {node.name!r} reads from unknown node {source!r} "
                    "(nodes must be added in topological order)"
                )
        self.nodes[node.name] = node
        if node.kind != "input":
            self.output = node.name
        return node.name

    def add_layer(self, spec: LayerSpec, input: str = GRAPH_INPUT) -> str:
        """Append an ordinary firing layer reading from ``input``."""
        return self.add_join(spec.name, [(spec, input)])

    def add_join(self, name: str,
                 contributions: Sequence[Tuple[LayerSpec, str]]) -> str:
        """Append a fire node adding ``contributions`` before one IF stage.

        The first contribution is the *primary* one: its spec's threshold is
        the node's firing threshold.  Every contribution's input size must
        match its source node's output size, and all contributions must
        produce the same output shape.
        """
        if not contributions:
            raise GraphError(f"join {name!r} needs at least one contribution")
        specs = tuple(spec for spec, _ in contributions)
        inputs = tuple(source for _, source in contributions)
        for spec, source in contributions:
            if isinstance(spec, ResidualBlockSpec):
                raise GraphError(
                    f"join {name!r}: expand residual blocks into fire nodes "
                    "(graph_from_snn does this) instead of nesting them"
                )
            producer = self.node(source)
            if spec.in_size != producer.out_size:
                raise GraphError(
                    f"join {name!r}: contribution {spec.name!r} expects "
                    f"{spec.in_size} inputs but {source!r} produces "
                    f"{producer.out_size}"
                )
        shapes = {tuple(spec.output_shape) for spec in specs}
        if len(shapes) != 1:
            raise GraphError(
                f"join {name!r}: contribution output shapes differ ({shapes})"
            )
        return self._add_node(GraphNode(
            name=name, kind="fire", inputs=inputs, specs=specs,
            output_shape=specs[0].output_shape,
        ))

    def add_concat(self, name: str, inputs: Sequence[str]) -> str:
        """Append a concatenation node over ``inputs`` (wiring only)."""
        if len(inputs) < 2:
            raise GraphError(f"concat {name!r} needs at least two inputs")
        if GRAPH_INPUT in inputs:
            raise GraphError(
                f"concat {name!r}: concatenating the external input is not "
                "supported (insert an explicit layer first)"
            )
        producers = [self.node(source) for source in inputs]
        shape = self._concat_shape(name, producers)
        return self._add_node(GraphNode(
            name=name, kind="concat", inputs=tuple(inputs), output_shape=shape,
        ))

    @staticmethod
    def _concat_shape(name: str, producers: Sequence[GraphNode]) -> Tuple[int, ...]:
        shapes = [producer.output_shape for producer in producers]
        if all(len(shape) == 3 for shape in shapes):
            spatial = {shape[:2] for shape in shapes}
            if len(spatial) != 1:
                raise GraphError(
                    f"concat {name!r}: spatial shapes differ ({spatial})"
                )
            h, w = shapes[0][:2]
            return (h, w, sum(shape[2] for shape in shapes))
        return (sum(int(np.prod(shape)) for shape in shapes),)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node(self, name: str) -> GraphNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r}") from None

    @property
    def input_size(self) -> int:
        return int(np.prod(self.input_shape))

    @property
    def output_size(self) -> int:
        if self.output is None:
            return self.input_size
        return self.node(self.output).out_size

    @property
    def output_shape(self) -> Tuple[int, ...]:
        if self.output is None:
            return self.input_shape
        return self.node(self.output).output_shape

    def topological(self) -> List[GraphNode]:
        """Nodes in topological order (insertion order, by construction)."""
        return list(self.nodes.values())

    def fire_nodes(self) -> List[GraphNode]:
        return [node for node in self.nodes.values() if node.kind == "fire"]

    def consumers(self, name: str) -> List[str]:
        return [node.name for node in self.nodes.values() if name in node.inputs]

    def concat_parts(self, name: str) -> List[Tuple[str, np.ndarray]]:
        """Element mapping of a concat node: ``(input, out_indices)`` pairs.

        ``out_indices[i]`` is the concat-output element fed by element ``i``
        of the input node (row-major HWC for channel concatenation).
        """
        node = self.node(name)
        if node.kind != "concat":
            raise GraphError(f"node {name!r} is not a concat node")
        producers = [self.node(source) for source in node.inputs]
        parts: List[Tuple[str, np.ndarray]] = []
        if len(node.output_shape) == 3:
            h, w, total = node.output_shape
            offset = 0
            for producer in producers:
                channels = producer.output_shape[2]
                pixels = np.arange(h * w, dtype=np.int64)[:, None] * total
                indices = (pixels + offset + np.arange(channels, dtype=np.int64)[None, :])
                parts.append((producer.name, indices.ravel()))
                offset += channels
        else:
            offset = 0
            for producer in producers:
                size = producer.out_size
                parts.append((producer.name,
                              np.arange(offset, offset + size, dtype=np.int64)))
                offset += size
        return parts

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Re-check the structural invariants (acyclicity, shapes, output)."""
        if GRAPH_INPUT not in self.nodes:
            raise GraphError("graph has no input node")
        if self.output is None:
            raise GraphError("graph has no output node")
        if self.output not in self.nodes:
            raise GraphError(f"output node {self.output!r} does not exist")
        if self.node(self.output).kind == "input":
            raise GraphError("the input node cannot be the graph output")
        self._check_acyclic()
        for node in self.nodes.values():
            if node.kind == "input":
                continue
            for source in node.inputs:
                if source not in self.nodes:
                    raise GraphError(
                        f"node {node.name!r} reads unknown node {source!r}"
                    )
            if node.kind == "fire":
                for spec, source in node.contributions():
                    producer = self.node(source)
                    if spec.in_size != producer.out_size:
                        raise GraphError(
                            f"node {node.name!r}: {spec.name!r} expects "
                            f"{spec.in_size} inputs, {source!r} produces "
                            f"{producer.out_size}"
                        )
            elif node.kind == "concat":
                expected = self._concat_shape(
                    node.name, [self.node(source) for source in node.inputs])
                if tuple(node.output_shape) != tuple(expected):
                    raise GraphError(
                        f"concat {node.name!r}: stored shape "
                        f"{node.output_shape} != derived {expected}"
                    )
            else:
                raise GraphError(f"unknown node kind {node.kind!r}")

    def _check_acyclic(self) -> None:
        """Kahn's algorithm over the stored edges (independent of insertion)."""
        indegree = {name: len(node.inputs) for name, node in self.nodes.items()}
        ready = [name for name, degree in indegree.items() if degree == 0]
        seen = 0
        while ready:
            current = ready.pop()
            seen += 1
            for consumer in self.consumers(current):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if seen != len(self.nodes):
            cyclic = sorted(name for name, degree in indegree.items() if degree > 0)
            raise GraphError(f"layer graph contains a cycle through {cyclic}")

    def describe(self) -> str:
        lines = [f"LayerGraph '{self.name}' (input {self.input_shape}, "
                 f"T={self.timesteps})"]
        for node in self.topological():
            if node.kind == "input":
                continue
            sources = ", ".join(node.inputs)
            if node.kind == "concat":
                lines.append(f"  {node.name:<20} concat[{sources}] -> "
                             f"{node.output_shape}")
            elif node.is_join:
                lines.append(f"  {node.name:<20} add-join[{sources}] -> "
                             f"{node.output_shape} (threshold {node.threshold})")
            else:
                lines.append(f"  {node.name:<20} {type(node.specs[0]).__name__} "
                             f"[{sources}] -> {node.output_shape} "
                             f"(threshold {node.threshold})")
        lines.append(f"  output: {self.output}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Conversion from the flat SnnNetwork format
# ----------------------------------------------------------------------
def graph_from_snn(snn: SnnNetwork) -> LayerGraph:
    """Expand a linear :class:`SnnNetwork` into a :class:`LayerGraph`.

    Residual blocks become plain DAG patterns: the body layers are ordinary
    fire nodes and the block output is an add-join of the last body layer
    (reading the previous body layer) and the shortcut normalisation layer
    (reading the block's input) — no special casing survives past this point.
    """
    graph = LayerGraph(snn.name, snn.input_shape, timesteps=snn.timesteps,
                       metadata=dict(snn.metadata))
    previous = GRAPH_INPUT
    for spec in snn.layers:
        if isinstance(spec, ResidualBlockSpec):
            block_input = previous
            for body in spec.body[:-1]:
                previous = graph.add_layer(body, input=previous)
            previous = graph.add_join(spec.body[-1].name, [
                (spec.body[-1], previous),
                (spec.shortcut, block_input),
            ])
        else:
            previous = graph.add_layer(spec, input=previous)
    graph.output = previous
    return graph


def as_layer_graph(network) -> LayerGraph:
    """Coerce a compiler input (SnnNetwork or LayerGraph) to a LayerGraph."""
    if isinstance(network, LayerGraph):
        return network
    if isinstance(network, SnnNetwork):
        return graph_from_snn(network)
    raise GraphError(
        f"cannot build a layer graph from {type(network).__name__}; expected "
        "SnnNetwork or LayerGraph"
    )
