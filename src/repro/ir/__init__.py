"""Layer-graph IR and the pass-based compilation pipeline.

``repro.ir`` is the structural backbone of the toolchain: networks — flat
:class:`~repro.snn.spec.SnnNetwork` lists or arbitrary DAG
:class:`LayerGraph` topologies (skip connections, multi-branch concats) —
compile through one pipeline of named, composable, introspectable passes::

    from repro.ir import compile
    compiled = compile(network, arch)                  # -> Program
    compiled = compile(network, arch, to="schedule")   # + engine lower/optimize

    from repro.ir import default_pipeline, FunctionPass
    pipeline = default_pipeline().insert_after(
        "placement", FunctionPass("report", lambda ctx: print(
            ctx.require("placement").chips_used()), requires=("placement",)))
    compiled = compile(network, arch, pipeline=pipeline)

See :mod:`repro.ir.pipeline` for the standard pass list and
:mod:`repro.ir.graph` for the IR itself.
"""

from .graph import (
    GRAPH_INPUT,
    GraphError,
    GraphNode,
    LayerGraph,
    as_layer_graph,
    graph_from_snn,
)
from .passes import (
    PASS_REGISTRY,
    CompileContext,
    FunctionPass,
    Pass,
    PassError,
    PassManager,
    PassRecord,
    build_pass,
    build_pipeline,
    register_pass,
)
from .pipeline import (
    PROGRAM_PASSES,
    SCHEDULE_PASSES,
    RoutePlan,
    build_routes,
    compile,
    default_pipeline,
    emit_program,
    logical_map,
    schedule_pipeline,
)
from .runner import GraphSnnRunner

__all__ = [
    "CompileContext",
    "FunctionPass",
    "GRAPH_INPUT",
    "GraphError",
    "GraphNode",
    "GraphSnnRunner",
    "LayerGraph",
    "PASS_REGISTRY",
    "PROGRAM_PASSES",
    "Pass",
    "PassError",
    "PassManager",
    "PassRecord",
    "RoutePlan",
    "SCHEDULE_PASSES",
    "as_layer_graph",
    "build_pass",
    "build_pipeline",
    "build_routes",
    "compile",
    "default_pipeline",
    "emit_program",
    "graph_from_snn",
    "logical_map",
    "register_pass",
    "schedule_pipeline",
]
