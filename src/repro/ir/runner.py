"""Abstract SNN execution of a :class:`~repro.ir.graph.LayerGraph`.

The DAG counterpart of :class:`~repro.snn.runner.AbstractSnnRunner`: executes
a layer graph node by node in topological order, time step by time step,
with exactly the hardware's integer arithmetic — integer weighted sums,
add-joins summed before one integrate-and-fire stage (the PS-NoC addition),
concat nodes as pure wiring.  The compiled program must reproduce this
runner's spikes bit-exactly; the test-suite checks the property on every
DAG workload.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..snn.encoding import EncoderName, encode, flatten_images
from ..snn.neurons import BatchedIfState
from ..snn.runner import RunnerError, SnnRunResult, _conv_sum, _dense_sum
from ..snn.spec import ConvSpec, DenseSpec, LayerSpec
from .graph import GRAPH_INPUT, LayerGraph


def _linear_sum(spikes: np.ndarray, spec: LayerSpec) -> np.ndarray:
    if isinstance(spec, DenseSpec):
        return _dense_sum(spikes, spec)
    if isinstance(spec, ConvSpec):
        return _conv_sum(spikes, spec)
    raise RunnerError(f"unsupported layer spec {spec!r}")


class GraphSnnRunner:
    """Topological, step-by-step simulator of a layer-graph SNN."""

    def __init__(self, graph: LayerGraph):
        graph.validate()
        self.graph = graph

    # ------------------------------------------------------------------
    def run_spike_trains(self, spike_trains: np.ndarray,
                         return_output_trains: bool = False) -> SnnRunResult:
        """Simulate pre-encoded spike trains of shape ``(N, T, input_size)``."""
        graph = self.graph
        spike_trains = np.asarray(spike_trains, dtype=bool)
        if spike_trains.ndim == 2:
            spike_trains = spike_trains[None, ...]
        if spike_trains.ndim != 3 or spike_trains.shape[2] != graph.input_size:
            raise RunnerError(
                "spike_trains must have shape (N, T, input_size) with "
                f"input_size {graph.input_size}"
            )
        batch, timesteps, _ = spike_trains.shape
        states: Dict[str, BatchedIfState] = {
            node.name: BatchedIfState.create(batch, node.out_size, node.threshold)
            for node in graph.fire_nodes()
        }
        concat_parts = {
            node.name: graph.concat_parts(node.name)
            for node in graph.topological() if node.kind == "concat"
        }
        counts = np.zeros((batch, graph.output_size), dtype=np.int64)
        spike_totals: Dict[str, int] = {
            node.name: 0 for node in graph.topological() if node.kind != "input"
        }
        spike_totals["input"] = 0
        output_trains = (
            np.zeros((batch, timesteps, graph.output_size), dtype=bool)
            if return_output_trains else None
        )
        for step in range(timesteps):
            values: Dict[str, np.ndarray] = {
                GRAPH_INPUT: spike_trains[:, step, :]
            }
            spike_totals["input"] += int(values[GRAPH_INPUT].sum())
            for node in graph.topological():
                if node.kind == "input":
                    continue
                if node.kind == "concat":
                    out = np.zeros((batch, node.out_size), dtype=bool)
                    for producer, indices in concat_parts[node.name]:
                        out[:, indices] = values[producer]
                else:
                    total = np.zeros((batch, node.out_size), dtype=np.int64)
                    for spec, source in node.contributions():
                        total += _linear_sum(values[source], spec)
                    out = states[node.name].step(total)
                values[node.name] = out
                spike_totals[node.name] += int(out.sum())
            counts += values[graph.output]
            if output_trains is not None:
                output_trains[:, step, :] = values[graph.output]
        activity = self._activity(spike_totals, batch, timesteps)
        return SnnRunResult(
            spike_counts=counts,
            predictions=np.argmax(counts, axis=1),
            timesteps=timesteps,
            layer_activity=activity,
            output_spike_trains=output_trains,
        )

    def run(self, inputs: np.ndarray, timesteps: Optional[int] = None,
            encoder: EncoderName = "deterministic", seed: int = 0,
            return_output_trains: bool = False) -> SnnRunResult:
        """Encode real-valued inputs into spike trains and simulate them."""
        timesteps = timesteps or self.graph.timesteps
        flat = flatten_images(np.asarray(inputs, dtype=np.float64))
        if flat.ndim == 1:
            flat = flat[None, :]
        if flat.shape[1] != self.graph.input_size:
            raise RunnerError(
                f"input size {flat.shape[1]} does not match graph input "
                f"{self.graph.input_size}"
            )
        spike_trains = encode(flat, timesteps, method=encoder, seed=seed)
        return self.run_spike_trains(spike_trains,
                                     return_output_trains=return_output_trains)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray,
                 timesteps: Optional[int] = None,
                 encoder: EncoderName = "deterministic", seed: int = 0) -> float:
        """Classification accuracy on a labelled set."""
        result = self.run(inputs, timesteps=timesteps, encoder=encoder, seed=seed)
        return result.accuracy(labels)

    # ------------------------------------------------------------------
    def _activity(self, spike_totals: Dict[str, int], batch: int,
                  timesteps: int) -> Dict[str, float]:
        sizes = {"input": self.graph.input_size}
        for node in self.graph.topological():
            if node.kind != "input":
                sizes[node.name] = node.out_size
        activity = {}
        for name, total in spike_totals.items():
            denominator = batch * timesteps * sizes[name]
            activity[name] = total / denominator if denominator else 0.0
        return activity
