"""NoC cost model: wave depth, hop counts and per-link congestion.

The paper's central observation is that partial-sum NoC traffic — not
compute — bounds the accelerator's cycle time: every wave of packets adds
``depth`` instruction groups to the per-timestep schedule, so the quantity
to minimise is the *total wave depth per time step*.  This module provides
the measurement side of the :mod:`repro.opt` subsystem:

* :func:`plan_metrics` — exact metrics of a packed
  :class:`~repro.ir.pipeline.RoutePlan` (wave count, per-timestep wave
  depth, total hops, per-link congestion histogram);
* :func:`link_congestion` / :func:`congestion_histogram` — per-directed-link
  load of a set of :class:`~repro.mapping.routing.Transfer`\\ s, computed
  from their XY routes;
* :func:`build_traffic_model` / :func:`placement_cost` — a cheap,
  placement-independent summary of a logical network's traffic (delivery
  and reduction edges between logical cores) and the hop-weighted cost
  function the congestion-aware placement search minimises.

All of it is read-only: nothing here mutates the logical network or the
placement (the traffic model deliberately avoids
:func:`~repro.mapping.spike_mapping.canonicalise_axons`, which reorders
core axons as a side effect).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from ..core.isa import Direction
from ..core.tile import TileCoordinate
from ..mapping.logical import EXTERNAL_INPUT, LogicalNetwork
from ..mapping.routing import Transfer, Wave, route_length

#: one directed mesh link of one NoC: (tile the hop leaves, direction, net)
LinkKey = Tuple[TileCoordinate, Direction, str]

#: relative weight of a reduction edge in the placement cost: reduction
#: rounds are serial (round r+1 reads round r's sums), so their route
#: lengths sit on the critical path more often than delivery hops do
REDUCTION_EDGE_WEIGHT = 2.0


# ----------------------------------------------------------------------
# Exact metrics of routed transfers / packed plans
# ----------------------------------------------------------------------
def wave_depth(wave: Wave) -> int:
    """Depth of one wave: its longest route plus the delivery step."""
    if not wave.transfers:
        return 0
    return max(len(transfer.route) for transfer in wave.transfers) + 1


def link_congestion(transfers: Iterable[Transfer]) -> Dict[LinkKey, int]:
    """Number of packets crossing every directed link (from XY routes)."""
    loads: Counter = Counter()
    for transfer in transfers:
        for hop in transfer.route:
            loads[(hop.tile, hop.direction, transfer.net)] += 1
    return dict(loads)


def congestion_histogram(transfers: Iterable[Transfer]) -> Dict[int, int]:
    """Histogram ``{load -> number of directed links with that load}``."""
    histogram: Counter = Counter()
    for load in link_congestion(transfers).values():
        histogram[load] += 1
    return dict(histogram)


@dataclass
class NocMetrics:
    """Aggregate NoC cost of one compiled route plan (one time step)."""

    #: number of waves scheduled per time step
    wave_count: int = 0
    #: total per-timestep wave depth — the NoC instruction groups one time
    #: step spends moving packets; the per-timestep NoC bottleneck
    wave_depth: int = 0
    #: deepest single wave
    max_wave_depth: int = 0
    #: total link traversals per time step
    total_hops: int = 0
    #: number of transfers (packets injected) per time step
    transfer_count: int = 0
    #: most-loaded directed link
    max_link_load: int = 0
    #: ``{load -> directed links with that load}``
    link_histogram: Dict[int, int] = field(default_factory=dict)
    #: per-layer wave depth (delivery + reduction)
    per_layer: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "wave_count": self.wave_count,
            "wave_depth": self.wave_depth,
            "max_wave_depth": self.max_wave_depth,
            "total_hops": self.total_hops,
            "transfer_count": self.transfer_count,
            "max_link_load": self.max_link_load,
        }


def plan_metrics(plan) -> NocMetrics:
    """Exact NoC metrics of a packed :class:`~repro.ir.pipeline.RoutePlan`.

    Each transfer's (possibly multi-segment) XY route is materialised once
    and reused for the depth, hop and congestion tallies —
    :attr:`Transfer.route` rebuilds the hop list on every access.
    """
    metrics = NocMetrics()
    loads: Counter = Counter()
    for layer in plan.layers:
        layer_depth = 0
        layer_waves = list(layer.delivery_waves)
        for round_waves in layer.reduction_rounds:
            layer_waves.extend(round_waves)
        for wave in layer_waves:
            depth = 0
            for transfer in wave.transfers:
                route = transfer.route
                depth = max(depth, len(route) + 1)
                metrics.total_hops += len(route)
                metrics.transfer_count += 1
                for hop in route:
                    loads[(hop.tile, hop.direction, transfer.net)] += 1
            metrics.wave_count += 1
            metrics.wave_depth += depth
            metrics.max_wave_depth = max(metrics.max_wave_depth, depth)
            layer_depth += depth
        metrics.per_layer[layer.layer] = layer_depth
    histogram: Counter = Counter()
    for load in loads.values():
        histogram[load] += 1
    metrics.link_histogram = dict(histogram)
    metrics.max_link_load = max(loads.values()) if loads else 0
    return metrics


def predicted_link_traffic(plan) -> Dict[LinkKey, int]:
    """Per-timestep packets the cost model predicts on every directed link.

    Walks every delivery and reduction wave of a packed
    :class:`~repro.ir.pipeline.RoutePlan` and counts one packet per route
    hop — the same accounting as :func:`link_congestion`, summed over the
    whole plan.  Program emission issues exactly one NoC operation per
    hop, so these loads should equal the *observed* per-timestep link
    traffic of :class:`repro.obs.NocTelemetry`;
    :func:`repro.obs.compare_link_traffic` checks that drift.
    """
    loads: Counter = Counter()
    for layer in plan.layers:
        waves = list(layer.delivery_waves)
        for round_waves in layer.reduction_rounds:
            waves.extend(round_waves)
        for wave in waves:
            for transfer in wave.transfers:
                for hop in transfer.route:
                    loads[(hop.tile, hop.direction, transfer.net)] += 1
    return dict(loads)


# ----------------------------------------------------------------------
# Placement-independent traffic model (for the placement search)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficEdge:
    """One logical traffic demand between two logical cores."""

    src_core: int
    dst_core: int
    lanes: int
    weight: float = 1.0


@dataclass
class TrafficModel:
    """All core-to-core traffic of a logical network, by kind."""

    delivery: List[TrafficEdge] = field(default_factory=list)
    reduction: List[TrafficEdge] = field(default_factory=list)

    def edges(self) -> List[TrafficEdge]:
        return self.delivery + self.reduction

    @property
    def edge_count(self) -> int:
        return len(self.delivery) + len(self.reduction)


def build_traffic_model(logical: LogicalNetwork) -> TrafficModel:
    """Extract every delivery and reduction edge of a logical network.

    Delivery edges mirror the delivery segments
    :func:`~repro.mapping.spike_mapping.canonicalise_axons` will later
    produce (one per producer head core per consumer core) but are derived
    read-only through the output locators.  Reduction edges connect every
    group member to its head.
    """
    model = TrafficModel()
    locators = logical.build_locators()
    for layer in logical.layers:
        for core in layer.cores:
            if core.source == EXTERNAL_INPUT:
                continue
            locator = locators[core.source]
            lanes_by_producer: Dict[int, int] = {}
            for element in core.axon_sources:
                producer_core, _ = locator[int(element)]
                lanes_by_producer[producer_core] = \
                    lanes_by_producer.get(producer_core, 0) + 1
            for producer_core, lanes in sorted(lanes_by_producer.items()):
                model.delivery.append(TrafficEdge(
                    src_core=producer_core, dst_core=core.index,
                    lanes=lanes, weight=1.0,
                ))
        for group in layer.groups:
            for member in group.members:
                model.reduction.append(TrafficEdge(
                    src_core=member, dst_core=group.head,
                    lanes=int(group.lanes.size),
                    weight=REDUCTION_EDGE_WEIGHT,
                ))
    return model


def placement_cost(model: TrafficModel,
                   positions: Dict[int, TileCoordinate]) -> float:
    """Hop-weighted cost of a placement under a traffic model.

    The sum of ``weight * manhattan_distance`` over every traffic edge: a
    cheap, incrementally updatable proxy for the packed wave depth (shorter
    routes make shallower waves, and clustered consumers make shorter
    multicast chains).
    """
    total = 0.0
    for edge in model.edges():
        total += edge.weight * route_length(positions[edge.src_core],
                                            positions[edge.dst_core])
    return total


def core_adjacency(model: TrafficModel) -> Dict[int, List[Tuple[int, float]]]:
    """Per-core list of ``(other core, weight)`` — for incremental deltas."""
    adjacency: Dict[int, List[Tuple[int, float]]] = {}
    for edge in model.edges():
        adjacency.setdefault(edge.src_core, []).append((edge.dst_core, edge.weight))
        adjacency.setdefault(edge.dst_core, []).append((edge.src_core, edge.weight))
    return adjacency
