"""Multicast-aware spike delivery: merge fan-out SENDs into chains.

A producer head core whose output feeds several consumer cores emits, in
the default route plan, one point-to-point transfer per consumer.  All of
them inject at the same source router, so the wave packer must put each in
its own wave: a fan-out of ``m`` costs ``m`` waves of full route depth.

The spike router supports eject-and-forward multicast (Section II of the
paper: "a spike packet can be ejected at a destination and simultaneously
forwarded to the next destination").  This pass merges transfers that carry
*identical lane sets* from one source tile into a single chain transfer:
the packet visits the consumers in nearest-neighbour order, ejecting into
each intermediate consumer's axon buffer (``SpikeBypass(eject=True)``) and
terminating with an ordinary ``RECV`` at the last one — one injection, one
traversal of every chain link, one wave.

Only exact lane-set matches merge: an eject delivers the whole in-flight
packet, so partial-overlap consumers (conv halos) keep their own transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.tile import TileCoordinate
from ..mapping.placement import Placement
from ..mapping.routing import Transfer, route_length, xy_route

#: default cap on consumers per chain (longer chains split; bounds the
#: depth of any single wave and keeps link occupancy packable)
DEFAULT_MAX_TARGETS = 16


@dataclass
class MulticastDelivery:
    """Delivery-rewrite strategy installed by the ``multicast-delivery`` pass."""

    max_targets: int = DEFAULT_MAX_TARGETS

    def __post_init__(self) -> None:
        if self.max_targets < 2:
            raise ValueError("multicast chains need at least two targets")

    # ------------------------------------------------------------------
    def rewrite(self, transfers: List[Transfer],
                placement: Placement) -> List[Transfer]:
        """Merge same-source, same-lane-set spike transfers into chains."""
        groups: Dict[Tuple[TileCoordinate, frozenset], List[Transfer]] = {}
        order: List[Tuple[TileCoordinate, frozenset]] = []
        passthrough: List[Transfer] = []
        for transfer in transfers:
            if transfer.net != "spike" or transfer.lanes is None or transfer.via:
                passthrough.append(transfer)
                continue
            key = (transfer.src, transfer.lanes)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(transfer)

        rewritten: List[Transfer] = list(passthrough)
        for key in order:
            fanout = groups[key]
            if len(fanout) < 2:
                rewritten.extend(fanout)
                continue
            rewritten.extend(self._chains(fanout))
        return rewritten

    # ------------------------------------------------------------------
    def _chains(self, fanout: List[Transfer]) -> List[Transfer]:
        """Split one fan-out into reversal-free chains and build them.

        Consumers are visited in nearest-neighbour order.  A router cannot
        bounce a packet back out of the port it arrived on
        (``BYPASS $SRC, $DST`` requires distinct ports), so whenever the
        XY segment towards the next consumer would leave the current
        waypoint against its arrival direction — or the chain hits
        ``max_targets`` — the chain is closed and a fresh one starts from
        the source.
        """
        src = fanout[0].src
        remaining = list(fanout)
        chains: List[List[Transfer]] = []
        chain: List[Transfer] = []
        current = src
        arrival = None  # direction of the last hop into ``current``
        while remaining:
            nearest = min(
                range(len(remaining)),
                key=lambda i: (route_length(current, remaining[i].dst),
                               remaining[i].dst.row, remaining[i].dst.col),
            )
            chosen = remaining[nearest]
            segment = xy_route(current, chosen.dst)
            if chain and (len(chain) >= self.max_targets
                          or segment[0].direction == arrival.opposite):
                chains.append(chain)
                chain = []
                current = src
                arrival = None
                continue
            remaining.pop(nearest)
            chain.append(chosen)
            current = chosen.dst
            arrival = segment[-1].direction
        if chain:
            chains.append(chain)
        return [self._build(src, chain) for chain in chains]

    def _build(self, src: TileCoordinate, ordered: List[Transfer]) -> Transfer:
        """Assemble one chain transfer from an ordered consumer list."""
        if len(ordered) == 1:
            return ordered[0]
        ejects: List[Tuple[int, int]] = []
        hop_index = 0
        previous = src
        for transfer in ordered[:-1]:
            hop_index += route_length(previous, transfer.dst)
            ejects.append((hop_index, int(transfer.payload["axon_offset"])))
            previous = transfer.dst
        last = ordered[-1]
        return Transfer(
            src=src,
            dst=last.dst,
            net="spike",
            lanes=ordered[0].lanes,
            via=tuple(transfer.dst for transfer in ordered[:-1]),
            payload={
                "axon_offset": int(last.payload["axon_offset"]),
                "ejects": tuple(ejects),
            },
        )
