"""Congestion-aware placement: cost-guided search over the tile fabric.

The greedy rectangle scan of :func:`repro.mapping.placement.place_network`
minimises bounding-box area; it knows nothing about the NoC traffic the
placement induces.  This module refines a greedy placement with simulated
annealing over two move kinds — swap the tiles of two cores, or move a core
to a free tile inside the existing fabric — guided by the hop-weighted
traffic cost of :func:`repro.opt.cost.placement_cost`.  Deltas are computed
incrementally from the per-core adjacency, so one move costs O(degree)
instead of O(edges).

The search never grows the fabric (rows/cols are fixed, so chip counts and
program geometry stay comparable) and is fully deterministic for a given
seed.  A move budget proportional to the core count keeps full-size
networks (thousands of cores) tractable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.tile import TileCoordinate
from ..mapping.logical import LogicalNetwork
from ..mapping.placement import Placement
from ..mapping.routing import route_length
from .cost import TrafficModel, build_traffic_model, core_adjacency, placement_cost

#: default move budget per core (capped by MAX_ITERATIONS)
ITERATIONS_PER_CORE = 60

#: hard cap on the annealing move budget
MAX_ITERATIONS = 120_000


@dataclass
class PlacementSearchResult:
    """Outcome of one placement search."""

    placement: Placement
    initial_cost: float
    final_cost: float
    iterations: int
    accepted: int

    @property
    def improvement(self) -> float:
        """Relative cost reduction in [0, 1]."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


def _layer_columns(logical: LogicalNetwork,
                   positions: Dict[int, TileCoordinate]) -> Dict[str, Tuple[int, int]]:
    columns: Dict[str, Tuple[int, int]] = {}
    for layer in logical.layers:
        cols = [positions[core.index].col for core in layer.cores]
        columns[layer.name] = (min(cols), max(cols))
    return columns


def optimize_placement(logical: LogicalNetwork, placement: Placement,
                       iterations: Optional[int] = None,
                       seed: int = 0,
                       model: Optional[TrafficModel] = None) -> PlacementSearchResult:
    """Refine ``placement`` by annealing over swaps and moves.

    Returns a :class:`PlacementSearchResult` whose placement is never worse
    than the input under the traffic cost (the best-seen assignment is
    kept, and the input itself is the starting incumbent).
    """
    model = model or build_traffic_model(logical)
    adjacency = core_adjacency(model)
    positions: Dict[int, TileCoordinate] = dict(placement.positions)
    cores = sorted(positions)
    occupied = set(positions.values())
    free_tiles: List[TileCoordinate] = [
        TileCoordinate(row, col)
        for row in range(placement.rows)
        for col in range(placement.cols)
        if TileCoordinate(row, col) not in occupied
    ]

    def attached_cost(core: int) -> float:
        tile = positions[core]
        return sum(weight * route_length(tile, positions[other])
                   for other, weight in adjacency.get(core, ()))

    initial_cost = placement_cost(model, positions)
    cost = initial_cost
    best_cost = cost
    best_positions = dict(positions)

    if iterations is None:
        iterations = min(MAX_ITERATIONS, ITERATIONS_PER_CORE * len(cores))
    rng = np.random.default_rng(seed)
    # geometric cooling from a temperature of the order of one average edge
    mean_edge = initial_cost / max(1, model.edge_count)
    temperature = max(mean_edge, 1.0)
    cooling = (0.01 / temperature) ** (1.0 / max(1, iterations))

    accepted = 0
    for _ in range(iterations):
        core_a = cores[int(rng.integers(len(cores)))]
        move_to_free = free_tiles and rng.random() < 0.25
        if move_to_free:
            tile_b = free_tiles[int(rng.integers(len(free_tiles)))]
            core_b = None
        else:
            core_b = cores[int(rng.integers(len(cores)))]
            if core_b == core_a:
                temperature *= cooling
                continue
            tile_b = positions[core_b]
        tile_a = positions[core_a]

        before = attached_cost(core_a)
        if core_b is not None:
            before += attached_cost(core_b)
            # the a<->b edge (if any) is counted twice on both sides and its
            # length is swap-invariant, so the double-count cancels in delta
        positions[core_a] = tile_b
        if core_b is not None:
            positions[core_b] = tile_a
        after = attached_cost(core_a)
        if core_b is not None:
            after += attached_cost(core_b)
        delta = after - before

        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
            accepted += 1
            cost += delta
            if core_b is None:
                free_tiles[free_tiles.index(tile_b)] = tile_a
            if cost < best_cost:
                best_cost = cost
                best_positions = dict(positions)
        else:
            positions[core_a] = tile_a
            if core_b is not None:
                positions[core_b] = tile_b
        temperature *= cooling

    refined = Placement(
        arch=placement.arch,
        positions=best_positions,
        rows=placement.rows,
        cols=placement.cols,
        layer_columns=_layer_columns(logical, best_positions),
    )
    refined.validate()
    # re-derive the exact cost of the returned assignment (the incremental
    # accumulator can drift by float rounding over many accepted moves)
    final_cost = placement_cost(model, best_positions)
    return PlacementSearchResult(
        placement=refined,
        initial_cost=initial_cost,
        final_cost=final_cost,
        iterations=iterations,
        accepted=accepted,
    )
