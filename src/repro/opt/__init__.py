"""``repro.opt`` — NoC-aware placement & routing optimization subsystem.

The paper's bottleneck is partial-sum NoC traffic, not compute; this
package is the optimization layer that attacks it.  It contributes a NoC
cost model (:mod:`repro.opt.cost`: per-timestep wave depth, hop counts,
per-link congestion histograms) and three registered passes that slot into
the :mod:`repro.ir` pipeline between ``placement`` and ``route-pack``:

* ``congestion-placement`` — cost-guided annealing placement search
  (minimise predicted NoC traffic instead of bounding-box area);
* ``multicast-delivery`` — merge fan-out spike SENDs into
  eject-and-forward multicast chains (one injection, each link once);
* ``reduction-tree`` — balanced-tree partial-sum folds, O(log k) rounds.

Enable with ``repro.ir.compile(network, arch, optimize_noc=True)``, a
custom ``pipeline=optimized_pipeline()``, or
``ExperimentConfig(optimize_noc=True)``.  Optimized compiles stay
bit-exact (outputs and :class:`~repro.core.stats.ExecutionStats`) across
the reference/vectorized/sharded backends.

Usage
-----
::

    from repro.ir import compile
    from repro.opt import optimized_pipeline, plan_metrics, \
        compare_noc_pipelines

    compiled = compile(network, arch, optimize_noc=True)        # the knob
    compiled = compile(network, arch,
                       pipeline=optimized_pipeline())           # same thing
    plan_metrics(compiled.routes).as_dict()     # wave depth, hops, links
    compiled.timing.cycles_per_timestep        # repro.timing estimate

    # default vs optimized, incl. estimated cycles per timestep:
    compare_noc_pipelines(network, arch)

    # tuning knobs ride through compile(..., noc_options={...}):
    #   noc_seed, noc_placement_iterations, multicast_max_targets

See ``docs/timing.md`` for how the cycle estimates are derived and
``docs/pipeline.md`` for where the passes slot into the pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional

from .cost import (
    NocMetrics,
    TrafficEdge,
    TrafficModel,
    build_traffic_model,
    congestion_histogram,
    core_adjacency,
    link_congestion,
    placement_cost,
    plan_metrics,
    predicted_link_traffic,
    wave_depth,
)
from .multicast import DEFAULT_MAX_TARGETS, MulticastDelivery
from .placement import PlacementSearchResult, optimize_placement
from .reduction import TreeReduction
from .passes import (
    OPT_PASSES,
    CongestionPlacementPass,
    MulticastDeliveryPass,
    ReductionTreePass,
    optimized_pipeline,
)

__all__ = [
    "DEFAULT_MAX_TARGETS",
    "CongestionPlacementPass",
    "MulticastDelivery",
    "MulticastDeliveryPass",
    "NocMetrics",
    "OPT_PASSES",
    "PlacementSearchResult",
    "ReductionTreePass",
    "TrafficEdge",
    "TrafficModel",
    "TreeReduction",
    "build_traffic_model",
    "compare_noc_pipelines",
    "congestion_histogram",
    "core_adjacency",
    "link_congestion",
    "optimize_placement",
    "optimized_pipeline",
    "placement_cost",
    "plan_metrics",
    "predicted_link_traffic",
    "wave_depth",
]


def compare_noc_pipelines(network, arch, rows: Optional[int] = None,
                          noc_options: Optional[Dict[str, object]] = None
                          ) -> Dict[str, object]:
    """Compile ``network`` through both pipelines and compare NoC metrics.

    Returns ``{"default": metrics, "optimized": metrics, "reduction": {...}}``
    where the reduction entries are relative improvements in [0, 1] (0.25 =
    the optimized pipeline cut the metric by 25 %).  Each metrics dict also
    carries ``estimated_cycles_per_timestep`` — the :mod:`repro.timing`
    analytic estimate of the compiled schedule — so the cycle impact of the
    NoC passes is surfaced next to the raw wave metrics.  Used by the
    benchmark harness and the acceptance tests; compiles the network twice
    (the mapping is re-built, so the two compiles never share mutable
    state).
    """
    from ..ir.pipeline import compile as ir_compile

    def metrics_for(optimize: bool) -> Dict[str, object]:
        compiled = ir_compile(network, arch, rows=rows,
                              optimize_noc=optimize,
                              noc_options=noc_options)
        row = plan_metrics(compiled.routes).as_dict()
        row["estimated_cycles_per_timestep"] = \
            compiled.timing.cycles_per_timestep
        return row

    default = metrics_for(False)
    optimized = metrics_for(True)

    def relative(before: int, after: int) -> float:
        if before <= 0:
            return 0.0
        return 1.0 - after / before

    return {
        "default": default,
        "optimized": optimized,
        "reduction": {
            "wave_depth": relative(default["wave_depth"],
                                   optimized["wave_depth"]),
            "total_hops": relative(default["total_hops"],
                                   optimized["total_hops"]),
            "wave_count": relative(default["wave_count"],
                                   optimized["wave_count"]),
            "estimated_cycles": relative(
                default["estimated_cycles_per_timestep"],
                optimized["estimated_cycles_per_timestep"]),
        },
    }
