"""``repro.opt`` — NoC-aware placement & routing optimization subsystem.

The paper's bottleneck is partial-sum NoC traffic, not compute; this
package is the optimization layer that attacks it.  It contributes a NoC
cost model (:mod:`repro.opt.cost`: per-timestep wave depth, hop counts,
per-link congestion histograms) and three registered passes that slot into
the :mod:`repro.ir` pipeline between ``placement`` and ``route-pack``:

* ``congestion-placement`` — cost-guided annealing placement search
  (minimise predicted NoC traffic instead of bounding-box area);
* ``multicast-delivery`` — merge fan-out spike SENDs into
  eject-and-forward multicast chains (one injection, each link once);
* ``reduction-tree`` — balanced-tree partial-sum folds, O(log k) rounds.

Enable with ``repro.ir.compile(network, arch, optimize_noc=True)``, a
custom ``pipeline=optimized_pipeline()``, or
``ExperimentConfig(optimize_noc=True)``.  Optimized compiles stay
bit-exact (outputs and :class:`~repro.core.stats.ExecutionStats`) across
the reference/vectorized/sharded backends.
"""

from __future__ import annotations

from typing import Dict, Optional

from .cost import (
    NocMetrics,
    TrafficEdge,
    TrafficModel,
    build_traffic_model,
    congestion_histogram,
    core_adjacency,
    link_congestion,
    placement_cost,
    plan_metrics,
    wave_depth,
)
from .multicast import DEFAULT_MAX_TARGETS, MulticastDelivery
from .placement import PlacementSearchResult, optimize_placement
from .reduction import TreeReduction
from .passes import (
    OPT_PASSES,
    CongestionPlacementPass,
    MulticastDeliveryPass,
    ReductionTreePass,
    optimized_pipeline,
)

__all__ = [
    "DEFAULT_MAX_TARGETS",
    "CongestionPlacementPass",
    "MulticastDelivery",
    "MulticastDeliveryPass",
    "NocMetrics",
    "OPT_PASSES",
    "PlacementSearchResult",
    "ReductionTreePass",
    "TrafficEdge",
    "TrafficModel",
    "TreeReduction",
    "build_traffic_model",
    "compare_noc_pipelines",
    "congestion_histogram",
    "core_adjacency",
    "link_congestion",
    "optimize_placement",
    "optimized_pipeline",
    "placement_cost",
    "plan_metrics",
    "wave_depth",
]


def compare_noc_pipelines(network, arch, rows: Optional[int] = None,
                          noc_options: Optional[Dict[str, object]] = None
                          ) -> Dict[str, object]:
    """Compile ``network`` through both pipelines and compare NoC metrics.

    Returns ``{"default": metrics, "optimized": metrics, "reduction": {...}}``
    where the reduction entries are relative improvements in [0, 1] (0.25 =
    the optimized pipeline cut the metric by 25 %).  Used by the benchmark
    harness and the acceptance tests; compiles the network twice (the
    mapping is re-built, so the two compiles never share mutable state).
    """
    from ..ir.pipeline import compile as ir_compile

    def metrics_for(optimize: bool) -> NocMetrics:
        compiled = ir_compile(network, arch, rows=rows,
                              optimize_noc=optimize,
                              noc_options=noc_options)
        return plan_metrics(compiled.routes)

    default = metrics_for(False)
    optimized = metrics_for(True)

    def relative(before: int, after: int) -> float:
        if before <= 0:
            return 0.0
        return 1.0 - after / before

    return {
        "default": default.as_dict(),
        "optimized": optimized.as_dict(),
        "reduction": {
            "wave_depth": relative(default.wave_depth, optimized.wave_depth),
            "total_hops": relative(default.total_hops, optimized.total_hops),
            "wave_count": relative(default.wave_count, optimized.wave_count),
        },
    }
