"""Reduction-tree scheduling of partial-sum accumulation.

Algorithm 1 of the paper folds a reduction group's partial sums serially:
member ``i`` sends to the head in round ``i``, so a group of ``k + 1``
cores takes ``k`` rounds.  The PS router's accumulation register and
``SEND SUMBUF`` op support forwarding *partially accumulated* sums, which
lets the same group fold as a balanced binary tree in ``ceil(log2(k + 1))``
rounds: in every round the surviving cores pair up, each sender ships its
current value (its local partial sum, or its accumulation register once it
has received) and each receiver adds it (``SUM`` with ``consecutive`` set
once it holds a running sum).  The head is always a receiver, so the full
weighted sum ends in the head's accumulation register exactly as in the
serial schedule — integer addition is associative, so the result is
bit-identical.

Rounds remain global barriers (round ``r + 1`` sends read sums produced in
round ``r``), but each round's transfers pack into parallel waves as usual,
so a layer's reduction latency drops from O(k) to O(log k) rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..mapping.logical import LogicalLayer
from ..mapping.placement import Placement
from ..mapping.routing import Transfer, route_length


@dataclass
class TreeReduction:
    """Reduction-round strategy installed by the ``reduction-tree`` pass."""

    def rounds(self, layer: LogicalLayer,
               placement: Placement) -> List[List[Transfer]]:
        """Balanced-tree reduction rounds of one layer (merged across groups)."""
        per_group = [self._group_rounds(group, placement)
                     for group in layer.groups]
        depth = max((len(rounds) for rounds in per_group), default=0)
        merged: List[List[Transfer]] = []
        for round_index in range(depth):
            round_transfers: List[Transfer] = []
            for rounds in per_group:
                if round_index < len(rounds):
                    round_transfers.extend(rounds[round_index])
            merged.append(round_transfers)
        return merged

    # ------------------------------------------------------------------
    def _group_rounds(self, group, placement: Placement) -> List[List[Transfer]]:
        if len(group.core_indices) < 2:
            return []
        head_tile = placement.position(group.head)
        # head first, then members by distance so far cores fold inwards
        survivors = [group.head] + sorted(
            group.members,
            key=lambda core: (route_length(placement.position(core), head_tile),
                              core),
        )
        lanes = frozenset(int(lane) for lane in group.lanes)
        received: Dict[int, bool] = {core: False for core in survivors}
        rounds: List[List[Transfer]] = []
        while len(survivors) > 1:
            half = (len(survivors) + 1) // 2
            round_transfers: List[Transfer] = []
            for position in range(half, len(survivors)):
                sender = survivors[position]
                receiver = survivors[position - half]
                round_transfers.append(Transfer(
                    src=placement.position(sender),
                    dst=placement.position(receiver),
                    net="ps",
                    lanes=lanes,
                    payload={
                        # a sender that already folded sums forwards its
                        # accumulation register, not its local partial sum
                        "use_sum_buf": received[sender],
                        # a receiver that already holds a running sum keeps
                        # accumulating into it (consec_add in Fig. 2b)
                        "consecutive": received[receiver],
                    },
                ))
                received[receiver] = True
            survivors = survivors[:half]
            rounds.append(round_transfers)
        return rounds
