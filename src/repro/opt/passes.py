"""The registered NoC optimization passes and the optimized pipeline.

Three passes slot into the standard pipeline between ``placement`` and
``route-pack``:

``congestion-placement``
    Replaces the greedy rectangle placement with a cost-guided annealing
    search over the same fabric (:mod:`repro.opt.placement`), minimising
    the hop-weighted traffic cost instead of bounding-box area.

``multicast-delivery``
    Installs the :class:`~repro.opt.multicast.MulticastDelivery` rewrite:
    ``route-pack`` merges fan-out spike SENDs into eject-and-forward chains.

``reduction-tree``
    Installs the :class:`~repro.opt.reduction.TreeReduction` strategy:
    ``route-pack`` schedules partial-sum folds as balanced binary trees
    (O(log k) rounds) instead of serial member chains (O(k)).

All three are opt-in: the default pipeline is untouched, and
``repro.ir.compile(..., optimize_noc=True)`` (or
:func:`optimized_pipeline`) enables them.  The optimized program stays
bit-exact — outputs *and* :class:`~repro.core.stats.ExecutionStats` agree
across the reference/vectorized/sharded backends, and spike counts match
the default pipeline's.
"""

from __future__ import annotations

from ..ir.passes import CompileContext, Pass, PassManager, build_pass, \
    register_pass
from ..ir.pipeline import default_pipeline
from ..mapping.logical import MappingError
from .multicast import DEFAULT_MAX_TARGETS, MulticastDelivery
from .placement import optimize_placement
from .reduction import TreeReduction

#: the NoC optimization passes, in pipeline order
OPT_PASSES = ("congestion-placement", "multicast-delivery", "reduction-tree")


@register_pass
class CongestionPlacementPass(Pass):
    """Refine the greedy placement with the cost-guided annealing search."""

    name = "congestion-placement"
    requires = ("logical", "placement")
    provides = ("placement",)

    def run(self, ctx: CompileContext) -> str:
        logical = ctx.require("logical")
        result = optimize_placement(
            logical,
            ctx.require("placement"),
            iterations=ctx.option("noc_placement_iterations"),
            seed=int(ctx.option("noc_seed", 0)),
        )
        ctx.set("placement", result.placement)
        ctx.set("placement_search", result)
        return (f"traffic cost {result.initial_cost:.0f} -> "
                f"{result.final_cost:.0f} "
                f"({result.improvement:.0%} lower, "
                f"{result.accepted}/{result.iterations} moves)")

    def verify(self, ctx: CompileContext) -> None:
        placement = ctx.require("placement")
        placement.validate()
        logical = ctx.require("logical")
        if placement.n_placed != logical.n_cores:
            raise MappingError(
                f"optimized placement covers {placement.n_placed} cores, "
                f"logical network has {logical.n_cores}"
            )
        search = ctx.get("placement_search")
        if search is not None and search.final_cost > search.initial_cost:
            raise MappingError(
                "congestion-placement made the traffic cost worse "
                f"({search.initial_cost:.0f} -> {search.final_cost:.0f})"
            )


@register_pass
class MulticastDeliveryPass(Pass):
    """Install the multicast chain rewrite for spike delivery."""

    name = "multicast-delivery"
    requires = ("logical", "placement")
    provides = ("delivery_strategy",)

    def run(self, ctx: CompileContext) -> str:
        max_targets = int(ctx.option("multicast_max_targets",
                                     DEFAULT_MAX_TARGETS))
        ctx.set("delivery_strategy", MulticastDelivery(max_targets=max_targets))
        return f"chains capped at {max_targets} targets"


@register_pass
class ReductionTreePass(Pass):
    """Install balanced-tree scheduling for partial-sum reductions."""

    name = "reduction-tree"
    requires = ("logical", "placement")
    provides = ("reduction_strategy",)

    def run(self, ctx: CompileContext) -> str:
        ctx.set("reduction_strategy", TreeReduction())
        tallest = max(
            (len(group.members) for layer in ctx.require("logical").layers
             for group in layer.groups),
            default=0,
        )
        rounds = max(1, tallest).bit_length() if tallest else 0
        return (f"tallest group: {tallest} members -> "
                f"<= {rounds} tree rounds")


def optimized_pipeline(to: str = "program") -> PassManager:
    """The default pipeline with the NoC passes after ``placement``."""
    manager = default_pipeline(to)
    anchor = "placement"
    for name in OPT_PASSES:
        manager = manager.insert_after(anchor, build_pass(name))
        anchor = name
    return manager
