"""Published figures of prior SNN architectures (Table V).

Apples-to-apples re-implementation of TrueNorth, SpiNNaker, SNNwt and Tianji
is outside any reproduction's reach (the paper itself calls the comparison a
"best-effort" using published numbers), so Table V's competitor rows are
recorded here verbatim as reference data.  The "This work" row is *measured*
by the reproduction's own pipeline and compared against these rows by the
Table V benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ArchitectureReference:
    """One row of Table V: an SNN architecture running MNIST MLP."""

    name: str
    technology_nm: int
    accuracy: float
    fps: Optional[float]
    voltage: str
    power_mw: Optional[float]
    uj_per_frame: Optional[float]
    note: str = ""


#: Table V, verbatim (None marks the paper's "N.A." entries).
TABLE_V_REFERENCES: List[ArchitectureReference] = [
    ArchitectureReference(
        name="SNNwt", technology_nm=65, accuracy=0.9182, fps=None,
        voltage="1.2V", power_mw=None, uj_per_frame=214.7,
        note="spatially expanded, application specific (does not scale)",
    ),
    ArchitectureReference(
        name="SpiNNaker", technology_nm=130, accuracy=0.9501, fps=77,
        voltage="1.8V/1.2V", power_mw=300.0, uj_per_frame=3896.0,
        note="20 ARM cores per chip, two dynamic NoCs",
    ),
    ArchitectureReference(
        name="Tianji", technology_nm=120, accuracy=0.9659, fps=None,
        voltage="1.2V", power_mw=120.0, uj_per_frame=None,
        note="power figure is dynamic power only",
    ),
    ArchitectureReference(
        name="TrueNorth (low power)", technology_nm=28, accuracy=0.9270, fps=1000,
        voltage="0.775V", power_mw=0.268, uj_per_frame=0.268,
        note="custom SRAM, mixed async/sync circuits",
    ),
    ArchitectureReference(
        name="TrueNorth (high accuracy)", technology_nm=28, accuracy=0.9942, fps=1000,
        voltage="0.775V", power_mw=108.0, uj_per_frame=108.0,
        note="402x the power of the low-power MNIST model",
    ),
]

#: The paper's own "This work" row, for checking the measured row's shape.
PAPER_THIS_WORK = ArchitectureReference(
    name="Shenjing (paper)", technology_nm=28, accuracy=0.9611, fps=40,
    voltage="1.05V/0.85V", power_mw=1.26, uj_per_frame=38.0,
    note="MNIST MLP on 10 cores at 120 kHz",
)


def energy_ordering(references: List[ArchitectureReference],
                    this_work_uj: float) -> List[str]:
    """Architectures ordered by energy per frame, including "This work".

    Used by the Table V benchmark to check the paper's qualitative claim: an
    order of magnitude lower energy than SNNwt, far below SpiNNaker, and
    within the same regime as TrueNorth.
    """
    rows = [(ref.name, ref.uj_per_frame) for ref in references
            if ref.uj_per_frame is not None]
    rows.append(("This work", this_work_uj))
    rows.sort(key=lambda item: item[1])
    return [name for name, _ in rows]
