"""Baselines: block-level-spike communication and published chip data (Table V)."""

from .block_spike import BaselineError, BlockSpikeRunner
from .reference import (
    ArchitectureReference,
    PAPER_THIS_WORK,
    TABLE_V_REFERENCES,
    energy_ordering,
)

__all__ = [
    "ArchitectureReference",
    "BaselineError",
    "BlockSpikeRunner",
    "PAPER_THIS_WORK",
    "TABLE_V_REFERENCES",
    "energy_ordering",
]
