"""Block-level spike communication baseline (the architecture Shenjing improves on).

Section II ("Reconfigurability and accuracy") describes how prior SNN
architectures without partial-sum NoCs handle layers that do not fit in one
core: every core integrates-and-fires on its *partial* weighted sum, and an
aggregating core sums the resulting spikes to approximate the full weighted
sum.  Re-quantising partial sums into 1-bit spikes loses information and is
the source of the accuracy loss that Shenjing's PS NoCs eliminate.

:class:`BlockSpikeRunner` simulates exactly that baseline on the same
abstract SNN (same integer weights, thresholds and input spike trains), so
the accuracy gap attributable to the communication scheme can be measured
directly — the ablation benchmark of DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.config import ArchitectureConfig
from ..snn.neurons import BatchedIfState
from ..snn.runner import SnnRunResult, _conv_sum, _dense_sum
from ..snn.spec import ConvSpec, DenseSpec, LayerSpec, ResidualBlockSpec, SnnNetwork


class BaselineError(RuntimeError):
    """Raised on unsupported baseline configurations."""


class _BlockSplitDenseState:
    """A dense layer executed with block-level spike aggregation.

    The layer's inputs are split into blocks of at most ``core_inputs``; each
    block is a separate core with its own IF state firing on its *partial*
    sum.  An aggregator core receives only those 1-bit spikes, weighs them by
    the firing threshold (its best available estimate of the partial sum) and
    fires the layer's output spikes.
    """

    def __init__(self, spec: DenseSpec, arch: ArchitectureConfig, batch: int):
        self.spec = spec
        self.arch = arch
        self.n_blocks = max(1, math.ceil(spec.in_size / arch.core_inputs))
        self.block_states = [
            BatchedIfState.create(batch, spec.out_size, spec.threshold)
            for _ in range(self.n_blocks)
        ]
        self.aggregator = BatchedIfState.create(batch, spec.out_size, spec.threshold)

    def step(self, spikes: np.ndarray) -> np.ndarray:
        if self.n_blocks == 1:
            # Fits in one core: identical to the exact computation.
            return self.block_states[0].step(_dense_sum(spikes, self.spec))
        aggregate = np.zeros((spikes.shape[0], self.spec.out_size), dtype=np.int64)
        for block in range(self.n_blocks):
            lo = block * self.arch.core_inputs
            hi = min(lo + self.arch.core_inputs, self.spec.in_size)
            partial = spikes[:, lo:hi].astype(np.int64) @ self.spec.weights[lo:hi]
            block_spikes = self.block_states[block].step(partial)
            # The aggregating core only sees 1-bit spikes; each spike stands
            # for (at least) one threshold's worth of partial sum.
            aggregate += block_spikes.astype(np.int64) * self.spec.threshold
        return self.aggregator.step(aggregate)


class _ExactLayerState:
    """Layers that fit in a core (or are not split) run exactly."""

    def __init__(self, layer: LayerSpec, batch: int):
        self.layer = layer
        if isinstance(layer, ResidualBlockSpec):
            self.body_states = [
                BatchedIfState.create(batch, spec.out_size, spec.threshold)
                for spec in layer.body[:-1]
            ]
            self.output_state = BatchedIfState.create(
                batch, layer.out_size, layer.body[-1].threshold
            )
        else:
            self.body_states = []
            self.output_state = BatchedIfState.create(batch, layer.out_size, layer.threshold)

    def step(self, spikes: np.ndarray) -> np.ndarray:
        layer = self.layer
        if isinstance(layer, DenseSpec):
            return self.output_state.step(_dense_sum(spikes, layer))
        if isinstance(layer, ConvSpec):
            return self.output_state.step(_conv_sum(spikes, layer))
        if isinstance(layer, ResidualBlockSpec):
            current = spikes
            for spec, state in zip(layer.body[:-1], self.body_states):
                current = state.step(_conv_sum(current, spec))
            body_sum = _conv_sum(current, layer.body[-1])
            shortcut_sum = _conv_sum(spikes, layer.shortcut)
            return self.output_state.step(body_sum + shortcut_sum)
        raise BaselineError(f"unsupported layer spec {layer!r}")


class BlockSpikeRunner:
    """Abstract SNN runner with block-level (spike-quantised) cross-core sums.

    Only fully connected layers larger than one core are affected — they are
    the layers whose split the paper's Fig. 1 illustrates; other layers run
    exactly, so any accuracy difference against
    :class:`~repro.snn.runner.AbstractSnnRunner` is attributable purely to
    the cross-core communication scheme.
    """

    def __init__(self, network: SnnNetwork, arch: ArchitectureConfig):
        network.validate()
        self.network = network
        self.arch = arch

    def run_spike_trains(self, spike_trains: np.ndarray) -> SnnRunResult:
        spike_trains = np.asarray(spike_trains, dtype=bool)
        if spike_trains.ndim == 2:
            spike_trains = spike_trains[None, ...]
        if spike_trains.ndim != 3 or spike_trains.shape[2] != self.network.input_size:
            raise BaselineError(
                "spike_trains must have shape (N, T, input_size) with input_size "
                f"{self.network.input_size}"
            )
        batch, timesteps, _ = spike_trains.shape
        states: List[object] = []
        for layer in self.network.layers:
            if isinstance(layer, DenseSpec) and layer.in_size > self.arch.core_inputs:
                states.append(_BlockSplitDenseState(layer, self.arch, batch))
            else:
                states.append(_ExactLayerState(layer, batch))
        counts = np.zeros((batch, self.network.output_size), dtype=np.int64)
        for step in range(timesteps):
            spikes = spike_trains[:, step, :]
            for state in states:
                spikes = state.step(spikes)
            counts += spikes
        return SnnRunResult(
            spike_counts=counts,
            predictions=np.argmax(counts, axis=1),
            timesteps=timesteps,
        )

    def split_layer_names(self) -> List[str]:
        """Names of the layers that suffer block-level spike aggregation."""
        return [
            layer.name for layer in self.network.layers
            if isinstance(layer, DenseSpec) and layer.in_size > self.arch.core_inputs
        ]
