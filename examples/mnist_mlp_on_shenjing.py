"""MNIST MLP on Shenjing — the paper's Fig. 1 / Table IV flagship experiment.

Trains the 784-512-10 multilayer perceptron on the synthetic MNIST
substitute, converts it to a rate-coded SNN with 5-bit weights, maps it onto
10 Shenjing cores (exactly the paper's count), cycle-simulates a few test
digits on the hardware model, and reports accuracy, the Fig. 1-style
placement, and the architectural power estimate next to the paper's numbers.

Run with:  python examples/mnist_mlp_on_shenjing.py
"""

import numpy as np

from repro.apps import ExperimentConfig, build_mnist_mlp, run_experiment
from repro.core import DEFAULT_ARCH


def main() -> None:
    config = ExperimentConfig(
        name="mnist-mlp",
        model_builder=build_mnist_mlp,
        dataset="mnist",
        timesteps=20,
        target_fps=40,
        train_epochs=4,
        train_size=800,
        test_size=150,
        hardware_frames=5,
        seed=0,
    )
    print("training the reference ANN, converting and mapping (this takes ~1 minute)...")
    result = run_experiment(config, arch=DEFAULT_ARCH)

    print("\n=== MNIST MLP on Shenjing ===")
    for key, value in result.table_iv_row().items():
        print(f"  {key:<24} {value}")
    print(f"  hardware == abstract    {result.hardware_matches_abstract}")
    print(f"  mean spike activity     {result.mean_activity:.4f}")

    print("\npaper's Table IV column for comparison:")
    print("  ANN 0.9967, SNN 0.9611, 10 cores, T=20, 40 fps, 120 kHz, "
          "1.35 mW, 0.135 mW/core, 0.038 mJ/frame")

    print("\nNote: absolute accuracy differs because the offline environment uses a "
          "synthetic MNIST substitute (see DESIGN.md); the structural results "
          "(10 cores, one chip, ~0.1 mW/core, tens of uJ/frame) and the lossless "
          "mapping are the reproduced claims.")


if __name__ == "__main__":
    main()
