"""Mapping a residual network onto Shenjing (Section III.3).

The paper highlights that Shenjing is the first SNN hardware that runs
ResNets automatically: the shortcut becomes a normalisation layer whose
partial sums travel through the PS NoCs into the residual block's output
cores.  This example converts a (reduced-width) CIFAR-10 ResNet, maps it,
and prints where the shortcut cores ended up and how they join the output
layer's reduction groups; it then cycle-simulates a couple of frames to show
the mapping is still lossless with shortcuts in play.

Run with:  python examples/resnet_mapping.py
"""

import numpy as np

from repro.apps import build_cifar_resnet_small
from repro.core import ShenjingSimulator, small_test_arch
from repro.datasets import synthetic_cifar10
from repro.mapping import compile_network, estimate_mapping
from repro.snn import AbstractSnnRunner, ConversionConfig, convert_ann_to_snn
from repro.snn.encoding import deterministic_encode, flatten_images


def main() -> None:
    data = synthetic_cifar10(train_size=64, test_size=8, seed=0)
    model = build_cifar_resnet_small()
    snn = convert_ann_to_snn(model, data.train_images[:32],
                             ConversionConfig(timesteps=12))
    print(snn.describe())

    # A mid-sized fabric: 64-synapse cores keep the example fast while the
    # structure (channel-split conv cores + shortcut cores) matches the paper.
    arch = small_test_arch(core_inputs=64, core_neurons=64, chip_rows=12, chip_cols=12)
    estimate = estimate_mapping(snn, arch)
    print("\n" + estimate.describe())

    compiled = compile_network(snn, arch)
    # The residual block's output layer is the one whose cores read from two
    # different source layers: the body's previous conv and (for the shortcut
    # normalisation cores) the block's input layer.
    block_layer = next(layer for layer in compiled.logical.layers
                       if len(layer.sources()) > 1)
    shortcut_cores = [core for core in block_layer.cores
                      if core.source != block_layer.cores[0].source]
    print(f"\nresidual output layer '{block_layer.name}':")
    print(f"  reduction groups: {len(block_layer.groups)}")
    print(f"  cores from the block body + shortcut normalisation: {block_layer.n_cores}")
    print(f"  shortcut cores (diag(lambda) weights): {len(shortcut_cores)}")

    spike_trains = deterministic_encode(flatten_images(data.test_images[:2]), snn.timesteps)
    abstract = AbstractSnnRunner(snn).run_spike_trains(spike_trains)
    hardware = ShenjingSimulator(compiled.program).run(spike_trains)
    match = np.array_equal(abstract.spike_counts, hardware.spike_counts)
    print(f"\nhardware spike counts equal the abstract SNN: {'YES' if match else 'NO'}")


if __name__ == "__main__":
    main()
