"""Design-space exploration: core size vs resources and power.

An extension experiment the paper's reconfigurable toolchain makes easy: the
same MNIST MLP is mapped onto Shenjing variants with different core sizes
(synapses x neurons per core) and the resulting core count, chips, clock
frequency and power are compared.  Smaller cores need more of them (more NoC
traffic); larger cores waste SRAM on a small model.

Run with:  python examples/design_space_sweep.py
"""

from repro.apps import build_mnist_mlp
from repro.core import ArchitectureConfig
from repro.datasets import synthetic_mnist
from repro.mapping import estimate_mapping
from repro.power import InterchipTraffic, PowerModel
from repro.snn import ConversionConfig, convert_ann_to_snn


CORE_SIZES = [64, 128, 256, 512]
TARGET_FPS = 40.0
TIMESTEPS = 20


def main() -> None:
    data = synthetic_mnist(train_size=64, test_size=8, seed=0)
    model = build_mnist_mlp()
    snn = convert_ann_to_snn(model, data.train_images[:32],
                             ConversionConfig(timesteps=TIMESTEPS))
    power_model = PowerModel()

    print(f"{'core size':>10} {'cores':>7} {'chips':>6} {'freq kHz':>10} "
          f"{'power mW':>10} {'uJ/frame':>10}")
    for size in CORE_SIZES:
        arch = ArchitectureConfig(core_inputs=size, core_neurons=size,
                                  chip_rows=28, chip_cols=28)
        estimate = estimate_mapping(snn, arch)
        spike_bits, ps_bits = estimate.interchip_bits_per_frame()
        report = power_model.report(
            name=f"mlp@{size}",
            cores=estimate.total_cores,
            chips=estimate.chips,
            timesteps=TIMESTEPS,
            lanes_per_frame=estimate.lanes_per_frame(),
            cycles_per_frame=estimate.cycles_per_frame,
            target_fps=TARGET_FPS,
            interchip_traffic=InterchipTraffic(spike_bits=spike_bits, ps_bits=ps_bits),
        )
        print(f"{size:>10} {estimate.total_cores:>7} {estimate.chips:>6} "
              f"{report.frequency_hz / 1e3:>10.1f} {report.power_mw:>10.3f} "
              f"{report.uj_per_frame:>10.1f}")

    print("\nThe paper's design point (256 x 256 cores) maps the MLP onto 10 cores; "
          "halving the core size roughly quadruples the core count while the "
          "energy per frame stays in the same regime — the SRAM-dominated "
          "background power follows the core count.")


if __name__ == "__main__":
    main()
