"""Quickstart: compile a tiny SNN onto Shenjing and verify lossless mapping.

This example builds a small two-layer spiking network by hand (integer
weights, integer thresholds), maps it onto a miniature Shenjing fabric with
the full toolchain (logical mapping -> placement -> XY routing -> cycle
schedule), executes the compiled program through the multi-backend execution
engine (:mod:`repro.engine`), and checks that the hardware produces exactly
the same spikes as the abstract SNN — the paper's central property.

The backend is selectable: the cycle-level ``reference`` interpreter, the
batched ``vectorized`` backend (bit-exact, with an optimizer pass over the
lowered schedule), the multiprocess ``sharded`` backend, or ``auto`` (the
default), which picks one of the others from the batch size.

Run with:  python examples/quickstart.py [--backend auto|reference|vectorized|sharded]
      or:  python examples/quickstart.py --list-networks [name ...]

``--list-networks`` enumerates every benchmark builder in
``repro.apps.networks`` (Table III nets and the DAG workloads), converts
each with a few random calibration samples and prints its logical core /
chip footprint on the paper's architecture.
"""

import argparse

import numpy as np

from repro.core import small_test_arch
from repro.engine import ExecutionEngine, assert_backend_parity, list_backends
from repro.mapping import compile_network
from repro.snn import AbstractSnnRunner, DenseSpec, SnnNetwork, deterministic_encode


def list_networks(names=None, calibration_samples: int = 4, seed: int = 0) -> None:
    """Print every network builder with its core/chip estimate."""
    from repro.apps.networks import ALL_BUILDERS
    from repro.core.config import DEFAULT_ARCH
    from repro.ir import LayerGraph
    from repro.mapping import estimate_mapping
    from repro.snn.conversion import ConversionConfig, convert_ann_to_graph

    selected = dict(ALL_BUILDERS)
    if names:
        unknown = sorted(set(names) - set(selected))
        if unknown:
            raise SystemExit(
                f"unknown network(s) {unknown}; available: "
                f"{', '.join(sorted(ALL_BUILDERS))}"
            )
        selected = {name: ALL_BUILDERS[name] for name in names}

    rng = np.random.default_rng(seed)
    config = ConversionConfig(max_calibration_samples=calibration_samples)
    print(f"{'network':<26} {'topology':<10} {'nodes':>5} {'cores':>7} "
          f"{'chips':>5}  fabric")
    for name, builder in selected.items():
        model = builder()
        calibration = rng.random((calibration_samples,) + model.input_shape)
        graph: LayerGraph = convert_ann_to_graph(model, calibration, config)
        estimate = estimate_mapping(graph, DEFAULT_ARCH)
        topology = "dag" if any(
            node.kind == "concat" or (node.kind == "fire" and node.is_join)
            for node in graph.topological()
        ) else "linear"
        print(f"{name:<26} {topology:<10} {len(graph.nodes) - 1:>5} "
              f"{estimate.total_cores:>7} {estimate.chips:>5}  "
              f"{estimate.fabric[0]}x{estimate.fabric[1]}")


def main(backend: str = "auto", check_parity: bool = True,
         optimize_noc: bool = False, show_trace: bool = False,
         inject_fault: str | None = None) -> None:
    rng = np.random.default_rng(0)

    # A 40-24-5 spiking MLP.  Each 16x16 core holds at most 16 inputs and 16
    # neurons, so both layers span several cores and exercise the partial-sum
    # NoC adder trees.
    arch = small_test_arch(core_inputs=16, core_neurons=16, chip_rows=8, chip_cols=8)
    network = SnnNetwork(
        name="quickstart",
        input_shape=(40,),
        layers=[
            DenseSpec(name="fc1", weights=rng.integers(-7, 8, size=(40, 24)), threshold=25),
            DenseSpec(name="fc2", weights=rng.integers(-7, 8, size=(24, 5)), threshold=20),
        ],
        timesteps=12,
    )

    # Encode a few random inputs into spike trains and run the abstract SNN.
    inputs = rng.random((4, 40))
    spike_trains = deterministic_encode(inputs, network.timesteps)
    abstract = AbstractSnnRunner(network).run_spike_trains(spike_trains)

    # Compile onto Shenjing and execute through the engine.  With
    # --optimize-noc the repro.opt passes (congestion-aware placement,
    # multicast delivery, reduction trees) rewrite the NoC schedule —
    # bit-exactly, as the lossless-mapping check below still proves.
    compiled = compile_network(network, arch, optimize_noc=optimize_noc)
    print(compiled.describe())
    if show_trace:
        # the per-pass compile trace every compile records (repro.obs
        # exports the same records as Chrome trace_event JSON)
        print("\ncompile trace:")
        print(compiled.describe_trace())
        print()
    if optimize_noc:
        from repro.opt import plan_metrics

        metrics = plan_metrics(compiled.routes)
        print(f"NoC-optimized: {metrics.wave_count} waves, per-timestep wave "
              f"depth {metrics.wave_depth}, {metrics.total_hops} hops")
    if inject_fault is not None:
        # Chaos demo: inject a deterministic fault into shard 1 of a
        # supervised sharded run and let repro.resilience recover it.
        from repro.engine import create_backend
        from repro.resilience import FaultPlan, RunPolicy

        plan = getattr(FaultPlan, inject_fault)(shard=1)
        policy = RunPolicy(shard_timeout=2.0, max_retries=2, backoff=0.05)
        backend = "sharded"
        sharded = create_backend("sharded", compiled.program, workers=2,
                                 policy=policy, faults=plan)
        try:
            hardware = sharded.run(spike_trains)
        finally:
            sharded.close()
        print(f"\ninjected fault: {plan.describe()}")
        print(hardware.resilience.describe())
        engine = None
    else:
        engine = ExecutionEngine(compiled.program, backend=backend)
        hardware = engine.run(spike_trains)

    chosen = getattr(engine.backend(), "last_selection", None) if engine else None
    selected = f"{backend} -> {chosen}" if chosen else backend
    print(f"\nexecution backend: {selected} (available: {', '.join(list_backends())})")
    print("abstract SNN spike counts:")
    print(abstract.spike_counts)
    print("Shenjing hardware spike counts:")
    print(hardware.spike_counts)
    match = np.array_equal(abstract.spike_counts, hardware.spike_counts)
    print(f"\nlossless mapping: {'YES' if match else 'NO'}")

    stats = hardware.stats
    print(f"cores used: {compiled.core_count}, chips: {compiled.chips_used}")
    print(f"simulated cycles: {stats.cycles}, atomic operations: {stats.total_operations}")
    print(f"axon switching activity: {stats.switching_activity:.4f}")

    if check_parity:
        report = assert_backend_parity(
            compiled.program, spike_trains,
            backends=("reference", "vectorized", "sharded"))
        print(f"\n{report.describe()}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", default="auto",
                        help="execution backend name "
                             "(auto | reference | vectorized | sharded)")
    parser.add_argument("--no-parity", action="store_true",
                        help="skip the cross-backend parity check")
    parser.add_argument("--optimize-noc", action="store_true",
                        help="enable the repro.opt NoC optimization passes "
                             "(congestion-aware placement, multicast "
                             "delivery, reduction trees)")
    parser.add_argument("--trace", action="store_true",
                        help="print the per-pass compile trace")
    parser.add_argument("--inject-fault", metavar="KIND", default=None,
                        choices=("crash", "hang", "exception", "slow",
                                 "corrupt"),
                        help="chaos demo: inject a deterministic fault "
                             "(crash | hang | exception | slow | corrupt) "
                             "into one shard of a supervised sharded run "
                             "and print the repro.resilience recovery "
                             "summary")
    parser.add_argument("--list-networks", nargs="*", metavar="NAME",
                        default=None,
                        help="list benchmark network builders with core/chip "
                             "estimates (all of them, or just the named ones)")
    args = parser.parse_args()
    if args.list_networks is not None:
        list_networks(args.list_networks or None)
    else:
        main(backend=args.backend, check_parity=not args.no_parity,
             optimize_noc=args.optimize_noc, show_trace=args.trace,
             inject_fault=args.inject_fault)
